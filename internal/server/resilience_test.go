package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dblp"
	"repro/internal/storage"
)

// saveSmallTree persists the small fixture as a gtree file and returns its
// path, for disk-backed resilience tests.
func saveSmallTree(t *testing.T, pageSize int) string {
	t.Helper()
	ds := dblp.SmallFixture()
	eng, err := core.BuildEngine(ds.Graph, core.BuildConfig{K: 3, Levels: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "small.gtree")
	if err := eng.SaveTree(path, pageSize); err != nil {
		t.Fatal(err)
	}
	return path
}

func createDiskSession(t *testing.T, ts *httptest.Server, name, path string, poolPages int) {
	t.Helper()
	resp := postJSON(t, ts.URL+"/sessions", CreateSessionRequest{
		Name: name, Source: "gtree", Path: path, PoolPages: poolPages,
	})
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("open gtree: status %d body %s", resp.StatusCode, b)
	}
	resp.Body.Close()
}

// TestAdmissionShed: with MaxInFlight slots all held, heavy query routes
// shed with 503 + Retry-After + structured overload JSON, while liveness
// and session-management routes stay reachable. Releasing the slot admits
// traffic again. The slot is occupied directly through the admission
// channel, so the test is deterministic — no racing slow requests.
func TestAdmissionShed(t *testing.T) {
	s := New(Config{CacheEntries: 8, RequestTimeout: 30 * time.Second, MaxInFlight: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	createSynthetic(t, ts, "dblp")

	s.admission <- struct{}{} // hold the only slot
	resp := postJSON(t, ts.URL+"/sessions/dblp/extract", ExtractRequest{Sources: []int32{0, 1}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("shed Retry-After = %q, want 1", ra)
	}
	oe := decodeBody[overloadError](t, resp)
	if oe.Kind != "shed" || oe.RetryAfterSeconds != 1 || oe.Error == "" {
		t.Fatalf("shed body = %+v", oe)
	}
	if got := s.metrics.overload.With("shed").Value(); got != 1 {
		t.Fatalf("overload{shed} = %d, want 1", got)
	}

	// Liveness and session introspection are never behind admission: an
	// overloaded server must stay observable.
	for _, url := range []string{ts.URL + "/healthz", ts.URL + "/metrics", ts.URL + "/sessions", ts.URL + "/sessions/dblp"} {
		resp := mustGet(t, url)
		resp.Body.Close()
	}

	<-s.admission // release the slot
	resp = postJSON(t, ts.URL+"/sessions/dblp/extract", ExtractRequest{Sources: []int32{0, 1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release extract status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestBreakerOpensAndRecovers drives the full failure lifecycle over HTTP:
// a corrupted backing file fails queries with plain 500s (no Retry-After)
// until the per-session breaker opens; then queries short-circuit with
// 503 kind=breaker_open and an honest Retry-After; after the file is
// restored and the cooldown elapses, the half-open probe succeeds and
// traffic resumes. The breaker metrics track the episode.
func TestBreakerOpensAndRecovers(t *testing.T) {
	const cooldown = 150 * time.Millisecond
	s := New(Config{
		CacheEntries: 8, RequestTimeout: 30 * time.Second,
		BreakerThreshold: 3, BreakerCooldown: cooldown,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// 4KB pages keep whole-graph sweeps cheap (~120 pages per pass); the
	// tiny pool forces queries to keep reading from disk, so corruption
	// cannot hide behind cached frames.
	path := saveSmallTree(t, 4096)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	createDiskSession(t, ts, "disk", path, 4)

	// Distinct budgets per call: the result cache must never answer for
	// the disk.
	budget := 9
	extract := func() *http.Response {
		budget++
		return postJSON(t, ts.URL+"/sessions/disk/extract", ExtractRequest{Sources: []int32{0, 1}, Budget: budget})
	}
	resp := extract()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean extract status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	// Flip one byte in every page after the superblock: every paged read
	// now fails its checksum, and the retry layer correctly refuses to
	// heal a fault that is really on disk.
	corrupted := bytes.Clone(pristine)
	for off := 4096 + 13; off < len(corrupted); off += 4096 {
		corrupted[off] ^= 0xFF
	}
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}

	// Threshold consecutive permanent faults: plain 500s, no Retry-After —
	// permanent faults must stay distinguishable from transient overload.
	for i := 0; i < 3; i++ {
		resp := extract()
		if resp.StatusCode != http.StatusInternalServerError {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("corrupted extract %d: status %d body %s, want 500", i, resp.StatusCode, b)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			t.Fatalf("permanent 500 carries Retry-After %q", ra)
		}
		resp.Body.Close()
	}

	// Breaker open: the next query fails fast with the structured 503.
	resp = extract()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("breaker-open extract status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("breaker-open 503 missing Retry-After")
	}
	oe := decodeBody[overloadError](t, resp)
	if oe.Kind != "breaker_open" || oe.RetryAfterSeconds < 1 {
		t.Fatalf("breaker-open body = %+v", oe)
	}
	if got := s.metrics.overload.With("breaker_open").Value(); got != 1 {
		t.Fatalf("overload{breaker_open} = %d, want 1", got)
	}

	// Repair the file; after one cooldown the half-open probe reads clean,
	// closes the breaker, and traffic resumes.
	if err := os.WriteFile(path, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	time.Sleep(cooldown + 50*time.Millisecond)
	resp = extract()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("probe extract status = %d body %s, want 200", resp.StatusCode, b)
	}
	resp.Body.Close()
	resp = extract()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery extract status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	body, _ := io.ReadAll(mustGet(t, ts.URL+"/metrics").Body)
	metrics := string(body)
	if !strings.Contains(metrics, `gmine_session_breaker_opens_total{session="disk"} 1`) {
		t.Errorf("metrics miss breaker opens count:\n%s", grepLines(metrics, "breaker"))
	}
	if !strings.Contains(metrics, `gmine_session_breaker_state{session="disk"} 0`) {
		t.Errorf("recovered breaker not reported closed:\n%s", grepLines(metrics, "breaker"))
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestTimeoutRetryAfter: the writer wrapped around http.TimeoutHandler
// injects Retry-After + JSON content type on the timeout 503 (the fixed
// TimeoutHandler API offers no header seam of its own), and counts the
// rejection in the overload metric.
func TestTimeoutRetryAfter(t *testing.T) {
	s := New(Config{CacheEntries: 8})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(time.Minute):
		}
	})
	timed := http.TimeoutHandler(slow, 10*time.Millisecond, string(marshalJSON(overloadError{
		Error: "request timed out", Kind: "timeout",
		RetryAfterSeconds: int(timeoutRetryAfter / time.Second),
	})))
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/sessions/x/analysis", nil)
	timed.ServeHTTP(&timeoutRetryWriter{ResponseWriter: rec, srv: s}, req)

	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("timeout status = %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "2" {
		t.Fatalf("timeout Retry-After = %q, want 2", ra)
	}
	if ct := rec.Header().Get("Content-Type"); ct != jsonContentType {
		t.Fatalf("timeout Content-Type = %q, want %q", ct, jsonContentType)
	}
	var oe overloadError
	if err := json.Unmarshal(rec.Body.Bytes(), &oe); err != nil {
		t.Fatalf("timeout body is not overload JSON: %v (%s)", err, rec.Body.String())
	}
	if oe.Kind != "timeout" || oe.RetryAfterSeconds != 2 {
		t.Fatalf("timeout body = %+v", oe)
	}
	if got := s.metrics.overload.With("timeout").Value(); got != 1 {
		t.Fatalf("overload{timeout} = %d, want 1", got)
	}

	// Handler-originated 503s already carry Retry-After and must pass
	// through untouched (no double count, header preserved).
	rec = httptest.NewRecorder()
	w := &timeoutRetryWriter{ResponseWriter: rec, srv: s}
	w.Header().Set("Retry-After", "7")
	w.WriteHeader(http.StatusServiceUnavailable)
	if ra := rec.Header().Get("Retry-After"); ra != "7" {
		t.Fatalf("pre-set Retry-After rewritten to %q", ra)
	}
	if got := s.metrics.overload.With("timeout").Value(); got != 1 {
		t.Fatalf("pass-through 503 double-counted: overload{timeout} = %d", got)
	}
}

// TestBatchCancelledClient: a batch whose client has gone away stops
// dispatching, cancels in-flight items, marks every item 499 (client
// closed request) and counts each in the cancellation metric — no orphan
// solves keep burning the pool after the disconnect.
func TestBatchCancelledClient(t *testing.T) {
	s, ts := newTestServer(t)
	createSynthetic(t, ts, "dblp")

	reqs := make([]ExtractRequest, 4)
	for i := range reqs {
		// Distinct budgets: no result-cache hits or coalescing between items.
		reqs[i] = ExtractRequest{Sources: []int32{0, 1}, Budget: 10 + i}
	}
	b, err := json.Marshal(BatchExtractRequest{Requests: reqs, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone
	req := httptest.NewRequest("POST", "/sessions/dblp/extract/batch", bytes.NewReader(b)).WithContext(ctx)
	req.SetPathValue("id", "dblp")
	rec := httptest.NewRecorder()
	cancels0 := s.metrics.cancels.Value()
	s.handleExtractBatch(rec, req)

	if rec.Code != http.StatusOK {
		t.Fatalf("batch status = %d body %s", rec.Code, rec.Body.String())
	}
	var resp BatchExtractResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Failed != len(reqs) || resp.Succeeded != 0 {
		t.Fatalf("cancelled batch tally: %+v", resp)
	}
	for _, item := range resp.Results {
		if item.Status != statusClientClosedRequest {
			t.Fatalf("item %d status = %d (%s), want 499", item.Index, item.Status, item.Error)
		}
		if !strings.Contains(item.Error, "cancel") {
			t.Fatalf("item %d error %q does not mention cancellation", item.Index, item.Error)
		}
	}
	if got := s.metrics.cancels.Value() - cancels0; got != uint64(len(reqs)) {
		t.Fatalf("cancelled queries metric moved by %d, want %d", got, len(reqs))
	}
}

// TestChaosWrappedServer: Config.FaultWrap (the -chaos serve flag) injects
// seeded transient faults under every disk-backed session the server
// opens; queries still answer 200 — the retry layer heals below the fault
// epoch — and the healing shows up in the session pool stats and the
// retry metrics family.
func TestChaosWrappedServer(t *testing.T) {
	// 2% rate over ~12k eligible reads per extract (100-odd power
	// iterations × ~120 4KB pages through a 16-frame pool) injects
	// hundreds of faults per query while keeping the odds of readAttempts
	// consecutive injections on one read negligible — and the seeded RNG
	// makes the run reproducible besides.
	fc, err := storage.ParseFaultConfig("rate=0.02,seed=5,kinds=flip+err+short")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{CacheEntries: 8, RequestTimeout: 30 * time.Second, FaultWrap: fc.Wrap})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	createDiskSession(t, ts, "disk", saveSmallTree(t, 4096), 16)

	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts.URL+"/sessions/disk/extract", ExtractRequest{Sources: []int32{0, 1}, Budget: 10 + i})
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("extract %d under chaos: status %d body %s", i, resp.StatusCode, b)
		}
		resp.Body.Close()
	}

	info := decodeBody[SessionInfo](t, mustGet(t, ts.URL+"/sessions/disk"))
	if info.Pool == nil {
		t.Fatal("disk session missing pool info")
	}
	if info.Pool.Retry.Healed == 0 {
		t.Fatalf("chaos wrap healed nothing: retry stats %+v", info.Pool.Retry)
	}
	if info.Pool.Retry.Failed != 0 {
		t.Fatalf("transient-only chaos latched %d permanent read failures", info.Pool.Retry.Failed)
	}

	body, _ := io.ReadAll(mustGet(t, ts.URL+"/metrics").Body)
	if !strings.Contains(string(body), `gmine_pool_read_retries_total{session="disk",op="healed"}`) {
		t.Errorf("metrics miss retry family:\n%s", grepLines(string(body), "retries"))
	}
}
