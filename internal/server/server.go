// Package server puts the GMine engine behind a long-lived HTTP/JSON
// service: named engine sessions (memory-built from an edge list or the
// synthetic DBLP generator, or disk-backed via a persisted G-Tree) live in
// a registry, and the paper's interactive operations — Tomahawk scenes,
// label queries, §III.B mining metrics, §IV connection-subgraph
// extraction — are endpoints. Per-session RW locking lets navigation and
// extraction reads run in parallel while builds stay exclusive, and a
// bounded LRU cache keyed on canonicalized request parameters serves
// repeated interactive queries without re-running the RWR solve.
//
// Endpoints:
//
//	GET    /healthz                      liveness + session list + cache stats
//	GET    /metrics                      Prometheus text scrape of the obs registry
//	POST   /sessions                     build or open a session
//	GET    /sessions                     list sessions
//	GET    /sessions/{id}                session info
//	DELETE /sessions/{id}                close and remove a session
//	GET    /sessions/{id}/tree           hierarchy stats + community listing
//	GET    /sessions/{id}/scene          Tomahawk scene (JSON or SVG)
//	POST   /sessions/{id}/extract        multi-source connection subgraph
//	POST   /sessions/{id}/extract/batch  many extractions through one worker pool
//	GET    /sessions/{id}/analysis       SubgraphReport of a leaf community
//	GET    /sessions/{id}/analysis/graph whole-graph metrics + PageRank (out of core for gtree sessions)
//	GET    /sessions/{id}/labels         exact or prefix label search
package server

import (
	"context"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"os"
	"time"
)

// Config tunes the server.
type Config struct {
	// Addr is the listen address (default ":8080").
	Addr string
	// CacheEntries bounds the LRU result cache (default 256).
	CacheEntries int
	// RequestTimeout caps each request end to end (default 60s); builds of
	// very large sessions may need more.
	RequestTimeout time.Duration
	// MaxBudget caps the extraction node budget a request may ask for
	// (default 2000) so one query cannot monopolize the server.
	MaxBudget int
	// MaxBatch caps the number of extraction requests one batch call may
	// carry (default 64).
	MaxBatch int
	// Logger receives one structured line per request plus server events.
	// Nil defaults to text on stderr at Warn — quiet by default so embedding
	// the server (or running it under httptest) doesn't spam per-request
	// Info lines; the CLI installs an Info-level logger explicitly.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxBudget <= 0 {
		c.MaxBudget = 2000
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	return c
}

// Server hosts the session registry and result cache.
type Server struct {
	cfg     Config
	reg     *Registry
	cache   *resultCache
	flight  flightGroup
	started time.Time
	httpSrv *http.Server
	log     *slog.Logger
	metrics *serverMetrics
}

// New returns a server ready to Handle or ListenAndServe.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		reg:     NewRegistry(),
		cache:   newResultCache(cfg.CacheEntries),
		started: time.Now(),
	}
	s.log = cfg.Logger
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(os.Stderr,
			&slog.HandlerOptions{Level: slog.LevelWarn}))
	}
	s.metrics = newServerMetrics(s)
	// Built here, not in Serve, so a Shutdown racing a just-started Serve
	// goroutine still sees the server and drains it.
	s.httpSrv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler returns the routed handler with the request-timeout middleware
// applied to query routes (exported for httptest and embedding). Session
// creation and deletion stay outside the timeout: a large build may
// legitimately exceed the query budget, and timing it out mid-build would
// tell the client "failed" while the session still commits. The instrument
// middleware (request IDs, trace, metrics, request log) sits INSIDE the
// timeout handler — see its comment for why route patterns force that
// nesting — and wraps the untimed routes individually.
func (s *Server) Handler() http.Handler {
	queries := http.NewServeMux()
	queries.HandleFunc("GET /healthz", s.handleHealthz)
	queries.HandleFunc("GET /metrics", s.handleMetrics)
	queries.HandleFunc("GET /sessions", s.handleListSessions)
	queries.HandleFunc("GET /sessions/{id}", s.handleSessionInfo)
	queries.HandleFunc("GET /sessions/{id}/tree", s.handleTree)
	queries.HandleFunc("GET /sessions/{id}/scene", s.handleScene)
	queries.HandleFunc("POST /sessions/{id}/extract", s.handleExtract)
	queries.HandleFunc("POST /sessions/{id}/extract/batch", s.handleExtractBatch)
	queries.HandleFunc("GET /sessions/{id}/analysis", s.handleAnalysis)
	queries.HandleFunc("GET /sessions/{id}/analysis/graph", s.handleGraphAnalysis)
	queries.HandleFunc("GET /sessions/{id}/labels", s.handleLabels)
	timed := http.TimeoutHandler(s.instrument(queries), s.cfg.RequestTimeout,
		`{"error":"request timed out"}`)

	mux := http.NewServeMux()
	mux.Handle("POST /sessions", s.instrument(http.HandlerFunc(s.handleCreateSession)))
	mux.Handle("DELETE /sessions/{id}", s.instrument(http.HandlerFunc(s.handleDeleteSession)))
	mux.Handle("/", timed)
	return mux
}

// ListenAndServe binds cfg.Addr and serves until Shutdown.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves on ln until Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	err := s.httpSrv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains in-flight requests (bounded by ctx), then closes every
// session, releasing disk-backed files.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.httpSrv.Shutdown(ctx)
	s.reg.closeAll()
	return err
}

// Registry exposes the session registry (for embedding and preloading).
func (s *Server) Registry() *Registry { return s.reg }

// CacheStats snapshots the result-cache counters.
func (s *Server) CacheStats() CacheStats { return s.cache.snapshot() }
