// Package server puts the GMine engine behind a long-lived HTTP/JSON
// service: named engine sessions (memory-built from an edge list or the
// synthetic DBLP generator, or disk-backed via a persisted G-Tree) live in
// a registry, and the paper's interactive operations — Tomahawk scenes,
// label queries, §III.B mining metrics, §IV connection-subgraph
// extraction — are endpoints. Per-session RW locking lets navigation and
// extraction reads run in parallel while builds stay exclusive, and a
// bounded LRU cache keyed on canonicalized request parameters serves
// repeated interactive queries without re-running the RWR solve.
//
// Endpoints:
//
//	GET    /healthz                      liveness + session list + cache stats
//	GET    /metrics                      Prometheus text scrape of the obs registry
//	POST   /sessions                     build or open a session
//	GET    /sessions                     list sessions
//	GET    /sessions/{id}                session info
//	DELETE /sessions/{id}                close and remove a session
//	GET    /sessions/{id}/tree           hierarchy stats + community listing
//	GET    /sessions/{id}/scene          Tomahawk scene (JSON or SVG)
//	POST   /sessions/{id}/extract        multi-source connection subgraph
//	POST   /sessions/{id}/extract/batch  many extractions through one worker pool
//	GET    /sessions/{id}/analysis       SubgraphReport of a leaf community
//	GET    /sessions/{id}/analysis/graph whole-graph metrics + PageRank (out of core for gtree sessions)
//	GET    /sessions/{id}/labels         exact or prefix label search
package server

import (
	"context"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/storage"
)

// Config tunes the server.
type Config struct {
	// Addr is the listen address (default ":8080").
	Addr string
	// CacheEntries bounds the LRU result cache (default 256).
	CacheEntries int
	// RequestTimeout caps each request end to end (default 60s); builds of
	// very large sessions may need more.
	RequestTimeout time.Duration
	// MaxBudget caps the extraction node budget a request may ask for
	// (default 2000) so one query cannot monopolize the server.
	MaxBudget int
	// MaxBatch caps the number of extraction requests one batch call may
	// carry (default 64).
	MaxBatch int
	// MaxInFlight bounds concurrently admitted query requests on the heavy
	// routes (scene, extract, batch, analysis, labels, tree); requests
	// beyond it are shed immediately with 503 + Retry-After instead of
	// queueing without bound. Default 256; negative disables admission
	// control entirely.
	MaxInFlight int
	// BreakerThreshold is how many consecutive permanent paged faults open
	// a session's circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects queries before
	// admitting a half-open probe (default 2s).
	BreakerCooldown time.Duration
	// FaultWrap optionally wraps the backing file of every disk-backed
	// session opened by this server (the -chaos flag installs a
	// storage.FaultConfig.Wrap here). Nil = direct file access. Test-only
	// fault injection; leave nil in production.
	FaultWrap func(storage.File) storage.File
	// Logger receives one structured line per request plus server events.
	// Nil defaults to text on stderr at Warn — quiet by default so embedding
	// the server (or running it under httptest) doesn't spam per-request
	// Info lines; the CLI installs an Info-level logger explicitly.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxBudget <= 0 {
		c.MaxBudget = 2000
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 256
	}
	return c
}

// Server hosts the session registry and result cache.
type Server struct {
	cfg     Config
	reg     *Registry
	cache   *resultCache
	flight  flightGroup
	started time.Time
	httpSrv *http.Server
	log     *slog.Logger
	metrics *serverMetrics
	// admission is the query-admission semaphore (nil = unlimited); see
	// Server.admit in resilience.go.
	admission chan struct{}
}

// New returns a server ready to Handle or ListenAndServe.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		reg:     NewRegistry(),
		cache:   newResultCache(cfg.CacheEntries),
		started: time.Now(),
	}
	s.reg.brkThreshold = cfg.BreakerThreshold
	s.reg.brkCooldown = cfg.BreakerCooldown
	if cfg.MaxInFlight > 0 {
		s.admission = make(chan struct{}, cfg.MaxInFlight)
	}
	s.log = cfg.Logger
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(os.Stderr,
			&slog.HandlerOptions{Level: slog.LevelWarn}))
	}
	s.metrics = newServerMetrics(s)
	// Built here, not in Serve, so a Shutdown racing a just-started Serve
	// goroutine still sees the server and drains it.
	s.httpSrv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler returns the routed handler with the request-timeout middleware
// applied to query routes (exported for httptest and embedding). Session
// creation and deletion stay outside the timeout: a large build may
// legitimately exceed the query budget, and timing it out mid-build would
// tell the client "failed" while the session still commits. The instrument
// middleware (request IDs, trace, metrics, request log) sits INSIDE the
// timeout handler — see its comment for why route patterns force that
// nesting — and wraps the untimed routes individually.
func (s *Server) Handler() http.Handler {
	// Heavy query routes sit behind the admission semaphore (load shedding
	// under overload); liveness (/healthz, /metrics) and cheap listings do
	// not, so an overloaded or broken server can still be observed.
	queries := http.NewServeMux()
	queries.HandleFunc("GET /healthz", s.handleHealthz)
	queries.HandleFunc("GET /metrics", s.handleMetrics)
	queries.HandleFunc("GET /sessions", s.handleListSessions)
	queries.HandleFunc("GET /sessions/{id}", s.handleSessionInfo)
	queries.Handle("GET /sessions/{id}/tree", s.admit(http.HandlerFunc(s.handleTree)))
	queries.Handle("GET /sessions/{id}/scene", s.admit(http.HandlerFunc(s.handleScene)))
	queries.Handle("POST /sessions/{id}/extract", s.admit(http.HandlerFunc(s.handleExtract)))
	queries.Handle("POST /sessions/{id}/extract/batch", s.admit(http.HandlerFunc(s.handleExtractBatch)))
	queries.Handle("GET /sessions/{id}/analysis", s.admit(http.HandlerFunc(s.handleAnalysis)))
	queries.Handle("GET /sessions/{id}/analysis/graph", s.admit(http.HandlerFunc(s.handleGraphAnalysis)))
	queries.Handle("GET /sessions/{id}/labels", s.admit(http.HandlerFunc(s.handleLabels)))
	// TimeoutHandler cancels the request context at the deadline (the
	// engine's cooperative cancellation unwinds the solve) and writes this
	// body itself; the timeoutRetryWriter outside it injects the
	// Retry-After header its fixed writer API cannot, so timeout 503s carry
	// the same backoff contract as shed and breaker 503s.
	timed := http.TimeoutHandler(s.instrument(queries), s.cfg.RequestTimeout,
		string(marshalJSON(overloadError{
			Error:             "request timed out",
			Kind:              "timeout",
			RetryAfterSeconds: int(timeoutRetryAfter / time.Second),
		})))

	mux := http.NewServeMux()
	mux.Handle("POST /sessions", s.instrument(http.HandlerFunc(s.handleCreateSession)))
	mux.Handle("DELETE /sessions/{id}", s.instrument(http.HandlerFunc(s.handleDeleteSession)))
	mux.Handle("/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		timed.ServeHTTP(&timeoutRetryWriter{ResponseWriter: w, srv: s}, r)
	}))
	return mux
}

// ListenAndServe binds cfg.Addr and serves until Shutdown.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves on ln until Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	err := s.httpSrv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains in-flight requests (bounded by ctx), then closes every
// session, releasing disk-backed files.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.httpSrv.Shutdown(ctx)
	s.reg.closeAll()
	return err
}

// Registry exposes the session registry (for embedding and preloading).
func (s *Server) Registry() *Registry { return s.reg }

// CacheStats snapshots the result-cache counters.
func (s *Server) CacheStats() CacheStats { return s.cache.snapshot() }
