package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dblp"
	"repro/internal/graph"
	"repro/internal/gtree"
)

// newTestServer returns a server plus an httptest frontend over its
// handler (timeout middleware included, like production).
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{CacheEntries: 32, RequestTimeout: 30 * time.Second})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode body: %v", err)
	}
	return v
}

// createSynthetic builds a small synthetic session over HTTP.
func createSynthetic(t *testing.T, ts *httptest.Server, name string) SessionInfo {
	t.Helper()
	resp := postJSON(t, ts.URL+"/sessions", CreateSessionRequest{
		Name: name, Source: "synthetic", Scale: 0.01, Seed: 7, K: 3, Levels: 3,
	})
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("create session: status %d body %s", resp.StatusCode, b)
	}
	return decodeBody[SessionInfo](t, resp)
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h := decodeBody[healthResponse](t, resp)
	if h.Status != "ok" {
		t.Fatalf("status = %q, want ok", h.Status)
	}
	if len(h.Sessions) != 0 {
		t.Fatalf("fresh server has sessions: %v", h.Sessions)
	}
}

func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t)
	info := createSynthetic(t, ts, "dblp")
	if info.Name != "dblp" || info.Source != "synthetic" {
		t.Fatalf("bad info: %+v", info)
	}
	if info.Nodes == 0 || info.Communities == 0 || info.DiskBacked {
		t.Fatalf("bad build result: %+v", info)
	}

	// Listing and per-session info agree.
	resp, err := http.Get(ts.URL + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	list := decodeBody[struct {
		Sessions []SessionInfo `json:"sessions"`
	}](t, resp)
	if len(list.Sessions) != 1 || list.Sessions[0].Name != "dblp" {
		t.Fatalf("bad listing: %+v", list)
	}

	resp, err = http.Get(ts.URL + "/sessions/dblp")
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeBody[SessionInfo](t, resp); got.Nodes != info.Nodes {
		t.Fatalf("info mismatch: %+v vs %+v", got, info)
	}

	// Tree stats + community listing.
	resp, err = http.Get(ts.URL + "/sessions/dblp/tree")
	if err != nil {
		t.Fatal(err)
	}
	tree := decodeBody[treeResponse](t, resp)
	if tree.Communities == 0 || len(tree.Listing) != tree.Communities {
		t.Fatalf("bad tree response: communities=%d listing=%d", tree.Communities, len(tree.Listing))
	}

	// Scene as JSON at the root: level-1 children present.
	resp, err = http.Get(ts.URL + "/sessions/dblp/scene")
	if err != nil {
		t.Fatal(err)
	}
	scene := decodeBody[sceneResponse](t, resp)
	if scene.Focus != 0 || len(scene.Children) == 0 {
		t.Fatalf("bad root scene: %+v", scene)
	}

	// Scene as SVG.
	resp, err = http.Get(ts.URL + "/sessions/dblp/scene?format=svg&size=400")
	if err != nil {
		t.Fatal(err)
	}
	svg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "image/svg") {
		t.Fatalf("scene svg content type = %q", ct)
	}
	if !strings.Contains(string(svg), "<svg") {
		t.Fatalf("scene svg is not svg: %.80s", svg)
	}

	// Label queries: the generator plants the paper's notables.
	resp, err = http.Get(ts.URL + "/sessions/dblp/labels?q=" + escapeQuery(dblp.NameJiaweiHan))
	if err != nil {
		t.Fatal(err)
	}
	hits := decodeBody[struct {
		Hits []labelHitJSON `json:"hits"`
	}](t, resp)
	if len(hits.Hits) != 1 || hits.Hits[0].Label != dblp.NameJiaweiHan {
		t.Fatalf("label query: %+v", hits)
	}
	resp, err = http.Get(ts.URL + "/sessions/dblp/labels?prefix=Jiawei&limit=5")
	if err != nil {
		t.Fatal(err)
	}
	hits = decodeBody[struct {
		Hits []labelHitJSON `json:"hits"`
	}](t, resp)
	if len(hits.Hits) == 0 {
		t.Fatal("prefix query found nothing")
	}

	// Analysis of the default (largest) leaf.
	resp, err = http.Get(ts.URL + "/sessions/dblp/analysis")
	if err != nil {
		t.Fatal(err)
	}
	rep := decodeBody[analysisResponse](t, resp)
	if rep.Nodes == 0 || len(rep.TopRanked) == 0 {
		t.Fatalf("bad analysis: %+v", rep)
	}

	// Delete, then everything 404s.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/dblp", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/sessions/dblp/tree")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("tree after delete: status %d, want 404", resp.StatusCode)
	}
}

func escapeQuery(s string) string {
	return strings.ReplaceAll(s, " ", "%20")
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	createSynthetic(t, ts, "dblp")

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	post := func(path, body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	cases := []struct {
		name string
		got  int
		want int
	}{
		{"unknown session tree", get("/sessions/nope/tree"), http.StatusNotFound},
		{"unknown session scene", get("/sessions/nope/scene"), http.StatusNotFound},
		{"unknown session extract", post("/sessions/nope/extract", `{"sources":[0]}`), http.StatusNotFound},
		{"malformed extract body", post("/sessions/dblp/extract", `{"sources":`), http.StatusBadRequest},
		{"unknown extract field", post("/sessions/dblp/extract", `{"srcs":[1]}`), http.StatusBadRequest},
		{"extract without sources", post("/sessions/dblp/extract", `{}`), http.StatusBadRequest},
		{"extract bad label", post("/sessions/dblp/extract", `{"labels":["No Such Author"]}`), http.StatusBadRequest},
		{"extract bad mode", post("/sessions/dblp/extract", `{"sources":[0],"mode":"xor"}`), http.StatusBadRequest},
		{"extract source out of range", post("/sessions/dblp/extract", `{"sources":[99999999]}`), http.StatusBadRequest},
		{"extract over budget cap", post("/sessions/dblp/extract", `{"sources":[0],"budget":1000000}`), http.StatusBadRequest},
		{"scene bad focus", get("/sessions/dblp/scene?focus=zzz"), http.StatusBadRequest},
		{"scene invalid community", get("/sessions/dblp/scene?focus=99999"), http.StatusBadRequest},
		{"scene bad format", get("/sessions/dblp/scene?format=png"), http.StatusBadRequest},
		{"labels without query", get("/sessions/dblp/labels"), http.StatusBadRequest},
		{"analysis bad community", get("/sessions/dblp/analysis?community=abc"), http.StatusBadRequest},
		{"analysis non-leaf community", get("/sessions/dblp/analysis?community=0"), http.StatusBadRequest},
		{"delete unknown session", func() int {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/nope", nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return resp.StatusCode
		}(), http.StatusNotFound},
		{"create duplicate", post("/sessions", `{"name":"dblp","source":"synthetic","scale":0.01}`), http.StatusConflict},
		{"create bad source", post("/sessions", `{"name":"x","source":"oracle"}`), http.StatusBadRequest},
		{"create bad name", post("/sessions", `{"name":"a b!","source":"synthetic"}`), http.StatusBadRequest},
		{"create dot-dot name", post("/sessions", `{"name":"..","source":"synthetic"}`), http.StatusBadRequest},
		{"create missing path", post("/sessions", `{"name":"x","source":"edges"}`), http.StatusBadRequest},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: status %d, want %d", c.name, c.got, c.want)
		}
	}
}

func TestExtractAndCache(t *testing.T) {
	s, ts := newTestServer(t)
	createSynthetic(t, ts, "dblp")
	body := ExtractRequest{
		Labels: []string{dblp.NamePhilipYu, dblp.NameFlipKorn},
		Budget: 20,
	}

	resp := postJSON(t, ts.URL+"/sessions/dblp/extract", body)
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("extract: status %d body %s", resp.StatusCode, b)
	}
	if h := resp.Header.Get("X-Gmine-Cache"); h != "miss" {
		t.Fatalf("first extract cache header = %q, want miss", h)
	}
	first := decodeBody[extractResponse](t, resp)
	if first.NodeCount == 0 || len(first.Sources) != 2 || first.TotalGoodness <= 0 {
		t.Fatalf("bad extraction: %+v", first)
	}

	// The identical query is served from the LRU without re-solving.
	resp = postJSON(t, ts.URL+"/sessions/dblp/extract", body)
	if h := resp.Header.Get("X-Gmine-Cache"); h != "hit" {
		t.Fatalf("second extract cache header = %q, want hit", h)
	}
	second := decodeBody[extractResponse](t, resp)
	if second.NodeCount != first.NodeCount || second.TotalGoodness != first.TotalGoodness {
		t.Fatalf("cache served a different result: %+v vs %+v", second, first)
	}

	// Source order is canonicalized, so the reversed query also hits.
	resp = postJSON(t, ts.URL+"/sessions/dblp/extract", ExtractRequest{
		Labels: []string{dblp.NameFlipKorn, dblp.NamePhilipYu},
		Budget: 20,
	})
	if h := resp.Header.Get("X-Gmine-Cache"); h != "hit" {
		t.Fatalf("reordered extract cache header = %q, want hit", h)
	}
	resp.Body.Close()

	// Defaults are canonicalized too: an omitted budget and the explicit
	// default (30) share one cache entry.
	for i, want := range []string{"miss", "hit"} {
		req := ExtractRequest{Labels: []string{dblp.NamePhilipYu, dblp.NameFlipKorn}}
		if i == 1 {
			req.Budget = 30
		}
		resp = postJSON(t, ts.URL+"/sessions/dblp/extract", req)
		resp.Body.Close()
		if h := resp.Header.Get("X-Gmine-Cache"); h != want {
			t.Fatalf("default-budget request %d: cache header %q, want %q", i, h, want)
		}
	}

	// Hits are observable on /healthz.
	if st := s.CacheStats(); st.Hits < 2 || st.Entries == 0 {
		t.Fatalf("cache stats: %+v", st)
	}

	// SVG format goes through the render layer.
	body.Format = "svg"
	resp = postJSON(t, ts.URL+"/sessions/dblp/extract", body)
	svg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(svg), "<svg") {
		t.Fatalf("extract svg is not svg: %.80s", svg)
	}
}

func TestSceneCache(t *testing.T) {
	_, ts := newTestServer(t)
	createSynthetic(t, ts, "dblp")
	for i, want := range []string{"miss", "hit"} {
		resp, err := http.Get(ts.URL + "/sessions/dblp/scene?format=svg")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if h := resp.Header.Get("X-Gmine-Cache"); h != want {
			t.Fatalf("scene request %d: cache header %q, want %q", i, h, want)
		}
	}
}

func TestDiskBackedSession(t *testing.T) {
	_, ts := newTestServer(t)

	// Persist a small G-Tree out of band.
	ds := dblp.SmallFixture()
	eng, err := core.BuildEngine(ds.Graph, core.BuildConfig{K: 3, Levels: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "small.gtree")
	if err := eng.SaveTree(path, 0); err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, ts.URL+"/sessions", CreateSessionRequest{
		Name: "disk", Source: "gtree", Path: path,
	})
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("open gtree: status %d body %s", resp.StatusCode, b)
	}
	info := decodeBody[SessionInfo](t, resp)
	if !info.DiskBacked || info.Nodes == 0 {
		t.Fatalf("bad disk-backed info: %+v", info)
	}

	// Navigation, labels and analysis work against the paged file.
	resp, err = http.Get(ts.URL + "/sessions/disk/scene?format=svg")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("disk scene: status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/sessions/disk/analysis")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("disk analysis: status %d", resp.StatusCode)
	}

	// Extraction runs out of core over the paged CSR and matches a
	// memory-backed session over the same graph field for field.
	resp = postJSON(t, ts.URL+"/sessions/disk/extract", ExtractRequest{Sources: []int32{0, 1}})
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("disk extract: status %d, want 200 (%s)", resp.StatusCode, b)
	}
	got := decodeBody[extractResponse](t, resp)
	if len(got.Nodes) == 0 || got.TotalGoodness <= 0 {
		t.Fatalf("disk extract returned empty result: %+v", got)
	}

	// Per-session info and /healthz expose the buffer-pool counters.
	info = decodeBody[SessionInfo](t, mustGet(t, ts.URL+"/sessions/disk"))
	if info.Pool == nil || !info.Pool.HasCSR || info.Pool.FilePages == 0 {
		t.Fatalf("disk session info misses pool stats: %+v", info.Pool)
	}
	if info.Pool.Hits+info.Pool.Misses == 0 {
		t.Fatal("pool counters flat after paged extraction")
	}
	h := decodeBody[healthResponse](t, mustGet(t, ts.URL+"/healthz"))
	if _, ok := h.Pools["disk"]; !ok {
		t.Fatalf("healthz misses pool stats for disk session: %+v", h.Pools)
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("GET %s: status %d (%s)", url, resp.StatusCode, b)
	}
	return resp
}

// TestDiskBackedExtractMatchesMemory opens the same graph as a memory
// session and a v2 gtree session and requires identical extraction
// responses (modulo the session name), single and batch, serial and
// parallel.
func TestDiskBackedExtractMatchesMemory(t *testing.T) {
	_, ts := newTestServer(t)

	ds := dblp.SmallFixture()
	eng, err := core.BuildEngine(ds.Graph, core.BuildConfig{K: 3, Levels: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "small.gtree")
	if err := eng.SaveTree(path, 0); err != nil {
		t.Fatal(err)
	}
	// The memory session must partition the same graph; write it as an
	// edge list so both sessions share one input.
	epath := filepath.Join(t.TempDir(), "small.edges")
	f, err := os.Create(epath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(f, ds.Graph); err != nil {
		t.Fatal(err)
	}
	f.Close()
	for _, req := range []CreateSessionRequest{
		{Name: "mem", Source: "edges", Path: epath, K: 3, Levels: 3, Seed: 1},
		{Name: "disk", Source: "gtree", Path: path, PoolPages: 32},
	} {
		resp := postJSON(t, ts.URL+"/sessions", req)
		if resp.StatusCode != http.StatusCreated {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("create %s: status %d (%s)", req.Name, resp.StatusCode, b)
		}
		resp.Body.Close()
	}

	normalize := func(r extractResponse) extractResponse {
		r.Session = ""
		return r
	}
	for _, req := range []ExtractRequest{
		{Sources: []int32{0, 5}, Budget: 12},
		{Sources: []int32{1, 8, 3}, Budget: 20, Mode: "or", Parallel: 3},
		{Labels: []string{dblp.NamePhilipYu, dblp.NameFlipKorn}, Budget: 15, Mode: "ksoft", K: 2},
	} {
		mem := decodeBody[extractResponse](t, postJSON(t, ts.URL+"/sessions/mem/extract", req))
		disk := decodeBody[extractResponse](t, postJSON(t, ts.URL+"/sessions/disk/extract", req))
		memJS, _ := json.Marshal(normalize(mem))
		diskJS, _ := json.Marshal(normalize(disk))
		if !bytes.Equal(memJS, diskJS) {
			t.Fatalf("memory and paged extraction diverged for %+v:\nmem:  %s\ndisk: %s", req, memJS, diskJS)
		}
	}

	// Batch extraction routes through the same shared paged view.
	batch := BatchExtractRequest{Requests: []ExtractRequest{
		{Sources: []int32{0, 5}, Budget: 12},
		{Sources: []int32{2, 9}, Budget: 10},
	}}
	resp := postJSON(t, ts.URL+"/sessions/disk/extract/batch", batch)
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("disk batch: status %d (%s)", resp.StatusCode, b)
	}
	br := decodeBody[BatchExtractResponse](t, resp)
	if br.Succeeded != 2 || br.Failed != 0 {
		t.Fatalf("disk batch: %d ok / %d failed: %+v", br.Succeeded, br.Failed, br.Results)
	}
}

// TestV1FileExtractConflict pins the 409 contract: a session opened from a
// legacy v1 file (no CSR section) serves navigation and labels but answers
// extraction with StatusConflict and an actionable message.
func TestV1FileExtractConflict(t *testing.T) {
	_, ts := newTestServer(t)

	ds := dblp.SmallFixture()
	eng, err := core.BuildEngine(ds.Graph, core.BuildConfig{K: 3, Levels: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "legacy.gtree")
	if err := gtree.SaveLegacy(eng.Tree(), ds.Graph, path, 0); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.URL+"/sessions", CreateSessionRequest{Name: "v1", Source: "gtree", Path: path})
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("open v1 file: status %d (%s)", resp.StatusCode, b)
	}
	resp.Body.Close()

	// Tree, scene and labels still work.
	mustGet(t, ts.URL+"/sessions/v1/tree").Body.Close()
	mustGet(t, ts.URL+"/sessions/v1/scene").Body.Close()
	mustGet(t, ts.URL+"/sessions/v1/labels?prefix=A").Body.Close()

	// Extraction: 409 with re-save guidance, for ids and labels alike.
	for _, req := range []ExtractRequest{
		{Sources: []int32{0, 1}},
		{Labels: []string{dblp.NamePhilipYu}},
	} {
		resp := postJSON(t, ts.URL+"/sessions/v1/extract", req)
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("v1 extract: status %d, want 409 (%s)", resp.StatusCode, b)
		}
		if !strings.Contains(string(b), "re-save") {
			t.Fatalf("v1 extract error not actionable: %s", b)
		}
	}
	// Batch items report the same conflict per item.
	resp = postJSON(t, ts.URL+"/sessions/v1/extract/batch", BatchExtractRequest{
		Requests: []ExtractRequest{{Sources: []int32{0, 1}}},
	})
	br := decodeBody[BatchExtractResponse](t, resp)
	if br.Failed != 1 || br.Results[0].Status != http.StatusConflict {
		t.Fatalf("v1 batch item: %+v", br.Results)
	}
	// Session info reports the missing CSR section.
	info := decodeBody[SessionInfo](t, mustGet(t, ts.URL+"/sessions/v1"))
	if info.Pool == nil || info.Pool.HasCSR {
		t.Fatalf("v1 session pool info should report hasCSR=false: %+v", info.Pool)
	}
}

func TestEdgeListSession(t *testing.T) {
	_, ts := newTestServer(t)
	// Write a labeled edge list via the graph package round-trip.
	ds := dblp.SmallFixture()
	path := filepath.Join(t.TempDir(), "small.edges")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(f, ds.Graph); err != nil {
		t.Fatal(err)
	}
	f.Close()

	resp := postJSON(t, ts.URL+"/sessions", CreateSessionRequest{
		Name: "edges", Source: "edges", Path: path, K: 3, Levels: 3,
	})
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("edge session: status %d body %s", resp.StatusCode, b)
	}
	info := decodeBody[SessionInfo](t, resp)
	if info.Nodes != ds.Graph.NumNodes() {
		t.Fatalf("edge session nodes = %d, want %d", info.Nodes, ds.Graph.NumNodes())
	}
}

func TestServeAndShutdown(t *testing.T) {
	s := New(Config{Addr: "127.0.0.1:0"})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()

	url := fmt.Sprintf("http://%s/healthz", ln.Addr())
	var resp *http.Response
	for i := 0; i < 50; i++ {
		resp, err = http.Get(url)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("healthz never came up: %v", err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve returned: %v", err)
	}
}
