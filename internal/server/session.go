package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// Session is one named engine instance hosted by the server. Its RWMutex
// is the server's concurrency discipline: every query handler (tree,
// scene, extract, analysis, labels) runs under the read lock so
// interactive reads proceed in parallel, while the initial build and
// deletion hold the write lock exclusively. Engine reads are themselves
// side-effect free — handlers use the SceneAt-style accessors and never
// move the engine's focus — and the disk-backed page path is internally
// synchronized, so shared reads are race-free.
type Session struct {
	name string
	gen  uint64 // registry-unique; cache keys embed it so a rebuilt name never hits stale entries

	mu  sync.RWMutex
	eng *core.Engine // nil while building, and again after the session dies

	// Immutable after the build completes (published before mu unlocks).
	source      string
	nodes       int
	edges       int
	diskBacked  bool
	createdAt   time.Time
	buildMillis int64

	// brk is the session's circuit breaker over permanent paged faults
	// (see guardedRead). Set at reserve time, immutable afterwards.
	brk *breaker

	// lastPool caches the most recent buffer-pool snapshot so liveness
	// surfaces (/healthz, /metrics) can report last-known values marked
	// stale when the session is write-locked, instead of dropping the row.
	poolMu   sync.Mutex
	lastPool *PoolInfo
}

// errSessionGone is returned by withRead when a session was reserved but
// its build failed or it was deleted while the caller waited on the lock.
var errSessionGone = fmt.Errorf("server: session is gone")

// withRead runs fn with the session engine under the read lock.
func (s *Session) withRead(fn func(eng *core.Engine) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.eng == nil {
		return errSessionGone
	}
	return fn(s.eng)
}

// guardedRead is withRead behind the session's circuit breaker: while the
// breaker is open (the backing file has produced repeated permanent paged
// faults) queries fail immediately with a 503-mapped breakerOpenError
// instead of grinding the pool through another doomed solve. Every query
// outcome feeds the breaker — a permanent paged fault (core.ErrPagedIO)
// counts against the store, anything else (success, validation error,
// cancellation) is evidence it reads fine and closes the breaker again.
// Engine-touching query handlers use this; liveness probes keep the
// unguarded paths so an open breaker never blinds /healthz.
func (s *Session) guardedRead(fn func(eng *core.Engine) error) error {
	if wait, ok := s.brk.allow(); !ok {
		return &breakerOpenError{session: s.name, retryAfter: wait}
	}
	err := s.withRead(fn)
	s.brk.record(errors.Is(err, core.ErrPagedIO))
	return err
}

// tryRead is withRead without blocking: if the session is write-locked
// (building or being deleted) it returns errSessionGone immediately.
// Liveness surfaces use it so they never queue behind a long build.
func (s *Session) tryRead(fn func(eng *core.Engine) error) error {
	if !s.mu.TryRLock() {
		return errSessionGone
	}
	defer s.mu.RUnlock()
	if s.eng == nil {
		return errSessionGone
	}
	return fn(s.eng)
}

// poolSnapshot returns the session's buffer-pool state in wire form, or
// nil for memory-backed sessions. It is the single snapshot path shared by
// /healthz, /metrics and session info, so the stat structs cannot drift
// apart again. With block=false it never waits on the session lock: if the
// session is write-locked (building, deleting), it returns the last
// successful snapshot marked Stale=true — previously /healthz silently
// dropped the row, making a session under load indistinguishable from a
// memory one.
func (s *Session) poolSnapshot(block bool) *PoolInfo {
	read := s.tryRead
	if block {
		read = s.withRead
	}
	var fresh *PoolInfo
	err := read(func(eng *core.Engine) error {
		if st := eng.Store(); st != nil {
			fresh = poolInfoFrom(st)
		}
		return nil
	})
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	if err == nil {
		if fresh == nil {
			return nil // memory-backed: no pool, nothing to go stale
		}
		s.lastPool = fresh
		return fresh
	}
	if s.lastPool == nil {
		return nil
	}
	cp := *s.lastPool
	cp.Stale = true
	return &cp
}

// SessionInfo is the wire representation of a session.
type SessionInfo struct {
	Name        string    `json:"name"`
	Source      string    `json:"source"`
	Nodes       int       `json:"nodes"`
	Edges       int       `json:"edges"`
	Communities int       `json:"communities"`
	Leaves      int       `json:"leaves"`
	Levels      int       `json:"levels"`
	DiskBacked  bool      `json:"diskBacked"`
	CreatedAt   time.Time `json:"createdAt"`
	BuildMillis int64     `json:"buildMillis"`
	// Pool reports the buffer-pool state of disk-backed sessions (nil for
	// memory-backed ones): how much of the paged file is resident and how
	// the working set is behaving under load.
	Pool *PoolInfo `json:"pool,omitempty"`
}

// info snapshots the session under the read lock.
func (s *Session) info() (SessionInfo, error) {
	var out SessionInfo
	err := s.withRead(func(eng *core.Engine) error {
		st := eng.Tree().ComputeStats()
		out = SessionInfo{
			Name:        s.name,
			Source:      s.source,
			Nodes:       s.nodes,
			Edges:       s.edges,
			Communities: st.Communities,
			Leaves:      st.Leaves,
			Levels:      st.Levels,
			DiskBacked:  s.diskBacked,
			CreatedAt:   s.createdAt,
			BuildMillis: s.buildMillis,
		}
		return nil
	})
	if err == nil {
		out.Pool = s.poolSnapshot(true)
	}
	return out, err
}

// cacheKey prefixes a request-parameter key with the session identity, so
// entries die with the session generation.
func (s *Session) cacheKey(params string) string {
	return fmt.Sprintf("%s#%d|%s", s.name, s.gen, params)
}

// Registry maps names to live sessions. Creation is two-phase: reserve
// publishes a write-locked placeholder (so the name is taken and readers
// queue behind the build), then commit or abort releases it.
type Registry struct {
	mu       sync.RWMutex
	sessions map[string]*Session
	nextGen  uint64

	// Breaker parameters stamped onto every reserved session (zero =
	// package defaults). Set once before the registry serves traffic.
	brkThreshold int
	brkCooldown  time.Duration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sessions: make(map[string]*Session)}
}

// reserve claims name and returns the placeholder session with its write
// lock held. The caller must call commit or abort exactly once.
func (r *Registry) reserve(name string) (*Session, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sessions[name]; ok {
		return nil, fmt.Errorf("server: session %q already exists", name)
	}
	r.nextGen++
	s := &Session{
		name: name, gen: r.nextGen, createdAt: time.Now(),
		brk: newBreaker(r.brkThreshold, r.brkCooldown),
	}
	s.mu.Lock()
	r.sessions[name] = s
	return s, nil
}

// commit publishes the built engine and releases the build lock.
func (r *Registry) commit(s *Session, eng *core.Engine) {
	s.eng = eng
	s.mu.Unlock()
}

// abort removes a reserved session whose build failed and releases the
// build lock; queued readers observe errSessionGone.
func (r *Registry) abort(s *Session) {
	r.mu.Lock()
	delete(r.sessions, s.name)
	r.mu.Unlock()
	s.mu.Unlock()
}

// get returns the named session.
func (r *Registry) get(name string) (*Session, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.sessions[name]
	return s, ok
}

// remove unregisters and closes the named session. It takes the session's
// write lock, so it blocks until in-flight reads drain, and later readers
// holding the stale pointer observe errSessionGone.
func (r *Registry) remove(name string) error {
	r.mu.Lock()
	s, ok := r.sessions[name]
	if ok {
		delete(r.sessions, name)
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("server: no session %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.eng != nil {
		err := s.eng.Close()
		s.eng = nil
		return err
	}
	return nil
}

// names returns the registered session names, sorted.
func (r *Registry) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.sessions))
	for n := range r.sessions {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// closeAll closes every session (server shutdown).
func (r *Registry) closeAll() {
	for _, n := range r.names() {
		_ = r.remove(n)
	}
}
