package server

import (
	"errors"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/obs"
)

// TestStatusOfWrappedSentinels pins the errors.Is behavior of the error →
// HTTP status mapping: the instrument middleware tags every handler error
// with a request ID (obs.RequestError wraps the original), so a sentinel
// that is only matched by identity would stop mapping the moment the tag
// is applied. A gone session must stay a 404 no matter how many layers of
// wrapping sit between statusOf and the sentinel.
func TestStatusOfWrappedSentinels(t *testing.T) {
	cases := []struct {
		name     string
		err      error
		fallback int
		want     int
	}{
		{"bare session-gone", errSessionGone, http.StatusInternalServerError, http.StatusNotFound},
		{"request-tagged session-gone", obs.TagRequest(errSessionGone, "deadbeef01234567"), http.StatusInternalServerError, http.StatusNotFound},
		{"fmt-wrapped session-gone", fmt.Errorf("lookup %q: %w", "default", errSessionGone), http.StatusInternalServerError, http.StatusNotFound},
		{"tagged and fmt-wrapped session-gone", obs.TagRequest(fmt.Errorf("lookup: %w", errSessionGone), "deadbeef01234567"), http.StatusInternalServerError, http.StatusNotFound},
		{"tagged backend fault", obs.TagRequest(fmt.Errorf("%w: short read", errBackendFault), "deadbeef01234567"), http.StatusBadRequest, http.StatusInternalServerError},
		{"unrelated error keeps fallback", errors.New("no such label"), http.StatusBadRequest, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := statusOf(tc.err, tc.fallback); got != tc.want {
				t.Fatalf("statusOf(%v, %d) = %d, want %d", tc.err, tc.fallback, got, tc.want)
			}
		})
	}
}
