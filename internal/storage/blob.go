package storage

import (
	"encoding/binary"
	"fmt"
)

// Blob layer: variable-length records stored in runs of consecutive pages.
// The first page of a run starts with the record length as a u32; the
// record bytes follow, continuing into subsequent pages. Because the pager
// is append-only, a run written by WriteBlob is always contiguous, so a
// blob is addressed by its first PageID alone.

// WriteBlob appends data as a new page run and returns its first page id.
func WriteBlob(p *Pager, data []byte) (PageID, error) {
	payload := p.PayloadSize()
	if payload <= 4 {
		return 0, fmt.Errorf("storage: page payload too small for blobs")
	}
	hdr := make([]byte, 4)
	binary.LittleEndian.PutUint32(hdr, uint32(len(data)))
	rest := data
	first := PageID(0)
	buf := make([]byte, 0, payload)
	buf = append(buf, hdr...)
	take := payload - 4
	if take > len(rest) {
		take = len(rest)
	}
	buf = append(buf, rest[:take]...)
	rest = rest[take:]
	id, err := p.Allocate()
	if err != nil {
		return 0, err
	}
	first = id
	if err := p.WritePage(id, buf); err != nil {
		return 0, err
	}
	for len(rest) > 0 {
		take = payload
		if take > len(rest) {
			take = len(rest)
		}
		id, err := p.Allocate()
		if err != nil {
			return 0, err
		}
		if err := p.WritePage(id, rest[:take]); err != nil {
			return 0, err
		}
		rest = rest[take:]
	}
	return first, nil
}

// BlobPages returns how many pages a blob of n bytes occupies with the
// given payload size.
func BlobPages(n, payloadSize int) int {
	if payloadSize <= 4 {
		return 0
	}
	if n <= payloadSize-4 {
		return 1
	}
	rest := n - (payloadSize - 4)
	return 1 + (rest+payloadSize-1)/payloadSize
}

// blobLen validates a blob's recorded length against the pages actually
// present after its first page, so a corrupt header cannot drive a
// multi-gigabyte allocation or a read past the end of the file.
func blobLen(p *Pager, id PageID, header uint32) (int, error) {
	payload := int64(p.PayloadSize())
	max := (int64(p.NumPages())-int64(id))*payload - 4
	if max < 0 {
		max = 0
	}
	if int64(header) > max {
		return 0, fmt.Errorf("storage: blob at page %d claims %d bytes, file holds at most %d", id, header, max)
	}
	return int(header), nil
}

// ReadBlob reads the blob starting at page id through the buffer pool.
// Pages are pinned only for the duration of the copy.
func ReadBlob(bp *BufferPool, id PageID) ([]byte, error) {
	payload := bp.pager.PayloadSize()
	pg, err := bp.Get(id)
	if err != nil {
		return nil, err
	}
	n, err := blobLen(bp.pager, id, binary.LittleEndian.Uint32(pg[:4]))
	if err != nil {
		bp.Release(id)
		return nil, err
	}
	out := make([]byte, 0, n)
	take := payload - 4
	if take > n {
		take = n
	}
	out = append(out, pg[4:4+take]...)
	bp.Release(id)
	next := id + 1
	for len(out) < n {
		pg, err := bp.Get(next)
		if err != nil {
			return nil, err
		}
		take := payload
		if take > n-len(out) {
			take = n - len(out)
		}
		out = append(out, pg[:take]...)
		bp.Release(next)
		next++
	}
	return out, nil
}

// ReadBlobDirect reads a blob without a buffer pool (used at build time).
func ReadBlobDirect(p *Pager, id PageID) ([]byte, error) {
	payload := p.PayloadSize()
	pg, err := p.ReadPage(id)
	if err != nil {
		return nil, err
	}
	n, err := blobLen(p, id, binary.LittleEndian.Uint32(pg[:4]))
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, n)
	take := payload - 4
	if take > n {
		take = n
	}
	out = append(out, pg[4:4+take]...)
	next := id + 1
	for len(out) < n {
		pg, err := p.ReadPage(next)
		if err != nil {
			return nil, err
		}
		take := payload
		if take > n-len(out) {
			take = n - len(out)
		}
		out = append(out, pg[:take]...)
		next++
	}
	return out, nil
}
