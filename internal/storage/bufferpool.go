package storage

import (
	"sort"
	"sync"
)

// Stats counts buffer pool activity; read with BufferPool.Stats.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Heat tracking: every Get — hit or miss — bumps a decayed access counter
// for the page's bucket (runs of 1<<heatShift consecutive pages, so the
// counters cover node ranges of the fixed-stride CSR runs, not individual
// pages). Every heatDecayEvery recorded accesses all buckets are halved,
// so the scores track the recent access mix instead of growing without
// bound: a region the workload has moved away from cools down within a
// few decay periods no matter how hot it once was. HotRanges exposes the
// top-k buckets; the gtree tiering promoter uses them to decide which
// page runs deserve pinned in-memory CSR fragments.
const (
	heatShift      = 3    // pages per heat bucket (8)
	heatDecayEvery = 8192 // recorded accesses between halvings
)

// HotRange is one hot page-bucket: Pages consecutive pages starting at
// First, with the bucket's current decayed access score.
type HotRange struct {
	First PageID
	Pages int
	Score float64
}

// PagePool is the page-pinning interface readers (blob, run, leaf) go
// through: the shared BufferPool itself, or a Partition view of it whose
// pins are accounted against a per-query reservation.
type PagePool interface {
	// Get returns the payload of page id, pinned until Release.
	Get(id PageID) ([]byte, error)
	// Release unpins page id.
	Release(id PageID)
}

type frame struct {
	id   PageID
	data []byte
	pins int
	// owner is the Partition whose Get loaded (or adopted) this frame, nil
	// for frames belonging to the shared remainder. While owner's resident
	// frame count is within its quota, other requesters may not evict this
	// frame — that reservation is what keeps one query's cold sweep from
	// flushing another's working set.
	owner *Partition
	// Intrusive LRU links, valid only while inLRU (the frame is unpinned
	// and evictable). Intrusive rather than container/list so the hottest
	// pool operations — hit, pin, release — allocate nothing: the paged
	// kernels call Get/Release once per page per node visit, and a
	// list.Element allocation per release was the last per-call garbage on
	// the zero-alloc NeighborsInto path.
	prev, next *frame
	inLRU      bool
}

// BufferPool caches page payloads with LRU eviction. Pages are pinned while
// handed out and must be released; only unpinned pages are evictable.
//
// GMine's interactive navigation reads the same sibling communities
// repeatedly; the pool is what makes a focus change touch the disk only for
// pages outside the current working set (experiment E10).
//
// Two contracts here are machine-checked by `make lint` (cmd/gminevet):
// every Get must have a Release reachable on all paths and every Partition
// a Close (the pinpair analyzer), and the warm Get/Release path itself is
// annotated //gmine:hotpath, so the hotalloc analyzer rejects new
// allocation in it — the intrusive LRU exists precisely to keep that path
// at zero allocations.
type BufferPool struct {
	mu     sync.Mutex
	cond   *sync.Cond // signaled when a frame becomes unpinned or protection lapses
	pager  *Pager
	cap    int
	frames map[PageID]*frame
	// LRU of unpinned frames: head = most recent, tail = next eviction
	// victim.
	head, tail *frame
	stats      Stats
	// reserved sums the quotas of open partitions (always ≤ cap-1, so at
	// least one frame stays up for grabs and no requester can starve).
	reserved int
	parts    []*Partition // open partitions, creation order

	// heat holds one decayed access counter per run of 1<<heatShift
	// consecutive pages, sized once at construction from the pager's page
	// count so the hot Get path never allocates. heatOps counts recorded
	// accesses toward the next halving.
	heat    []float64
	heatOps int
}

// NewBufferPool wraps pager with a pool holding up to capacity pages.
func NewBufferPool(pager *Pager, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	bp := &BufferPool{
		pager:  pager,
		cap:    capacity,
		frames: make(map[PageID]*frame, capacity),
		heat:   make([]float64, int(pager.NumPages())>>heatShift+1),
	}
	bp.cond = sync.NewCond(&bp.mu)
	return bp
}

// recordHeat charges one access to page id's heat bucket (and the
// requesting partition's counter), halving all buckets when the decay
// period rolls over. Caller holds bp.mu. The halving is amortized: O(1)
// per access, one O(buckets) pass every heatDecayEvery accesses.
//
//gmine:hotpath
func (bp *BufferPool) recordHeat(id PageID, requester *Partition) {
	b := int(id) >> heatShift
	if b >= len(bp.heat) {
		b = len(bp.heat) - 1
	}
	if b < 0 {
		return
	}
	bp.heat[b]++
	if requester != nil {
		requester.heat++
	}
	bp.heatOps++
	if bp.heatOps >= heatDecayEvery {
		bp.heatOps = 0
		for i := range bp.heat {
			bp.heat[i] /= 2
		}
		for _, p := range bp.parts {
			p.heat /= 2
		}
	}
}

// HotRanges returns the k hottest page buckets by decayed access score,
// hottest first (ties by page id; buckets with zero score are never
// returned). The result describes recent access frequency per page run —
// the signal the tiering promoter ranks candidate CSR fragments by.
func (bp *BufferPool) HotRanges(k int) []HotRange {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if k <= 0 {
		return nil
	}
	idx := make([]int, 0, len(bp.heat))
	for i, s := range bp.heat {
		if s > 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		if bp.heat[idx[a]] != bp.heat[idx[b]] {
			return bp.heat[idx[a]] > bp.heat[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if len(idx) > k {
		idx = idx[:k]
	}
	out := make([]HotRange, len(idx))
	for i, b := range idx {
		out[i] = HotRange{First: PageID(b << heatShift), Pages: 1 << heatShift, Score: bp.heat[b]}
	}
	return out
}

// lruPushFront marks fr most recently used. Caller holds bp.mu.
//
//gmine:hotpath
func (bp *BufferPool) lruPushFront(fr *frame) {
	fr.prev = nil
	fr.next = bp.head
	if bp.head != nil {
		bp.head.prev = fr
	}
	bp.head = fr
	if bp.tail == nil {
		bp.tail = fr
	}
	fr.inLRU = true
}

// lruRemove unlinks fr from the eviction order. Caller holds bp.mu.
//
//gmine:hotpath
func (bp *BufferPool) lruRemove(fr *frame) {
	if !fr.inLRU {
		return
	}
	if fr.prev != nil {
		fr.prev.next = fr.next
	} else {
		bp.head = fr.next
	}
	if fr.next != nil {
		fr.next.prev = fr.prev
	} else {
		bp.tail = fr.prev
	}
	fr.prev, fr.next = nil, nil
	fr.inLRU = false
}

// evictableBy reports whether requester may evict fr. Caller holds bp.mu;
// fr is unpinned (it is in the LRU). Shared frames and the requester's own
// frames are always fair game; frames of another partition only once that
// partition has spilled past its quota.
func evictableBy(fr *frame, requester *Partition) bool {
	o := fr.owner
	return o == nil || o == requester || o.held > o.quota
}

// Get returns the payload of page id, pinning it. The returned slice is the
// pool's frame; callers must not retain it past Release and must not write
// to it.
//
// When every frame is pinned or reserved by concurrent readers, Get waits
// for a Release instead of failing, so a pool smaller than the momentary
// reader count degrades to serialized paging rather than spurious I/O
// errors (e.g. a tiny -pool with a wide extraction worker fan-out). The
// waiting is deadlock-free as long as no caller holds a pin while
// requesting another page — every reader in this repo (blob, run, leaf)
// pins exactly one page at a time and releases it before the next Get;
// keep it that way. (Partition reservations cannot starve a waiter either:
// reserved ≤ cap-1, so once pins drain at least one frame is always
// evictable by anyone.)
//
//gmine:hotpath
func (bp *BufferPool) Get(id PageID) ([]byte, error) {
	return bp.get(id, nil)
}

// get is Get on behalf of requester (nil = the shared remainder). Hits and
// loads are attributed to the requester's counters and reservation.
//
//gmine:hotpath
func (bp *BufferPool) get(id PageID, requester *Partition) ([]byte, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if requester != nil && requester.closed {
		// Defensive: a straggler read after Close must not re-attribute
		// frames to a dead reservation; serve it from the shared remainder.
		requester = nil
	}
	bp.recordHeat(id, requester)
	for {
		if fr, ok := bp.frames[id]; ok {
			bp.stats.Hits++
			if requester != nil {
				requester.stats.Hits++
				// Re-adopt shared frames into the requester's working set
				// while it has reservation to spare: a warm page a query
				// keeps coming back to deserves the query's protection.
				if fr.owner == nil && requester.held < requester.quota {
					fr.owner = requester
					requester.held++
				}
			}
			fr.pins++
			bp.lruRemove(fr)
			return fr.data, nil
		}
		if len(bp.frames) < bp.cap {
			break
		}
		// Walk victims LRU-first, skipping frames protected by another
		// partition's reservation.
		evicted := false
		for victim := bp.tail; victim != nil; victim = victim.prev {
			if !evictableBy(victim, requester) {
				continue
			}
			bp.lruRemove(victim)
			delete(bp.frames, victim.id)
			if victim.owner != nil {
				victim.owner.held--
			}
			bp.stats.Evictions++
			if requester != nil {
				requester.stats.Evictions++
			}
			evicted = true
			break
		}
		if evicted {
			continue
		}
		// Every frame is pinned or protected: wait for a Release (or a
		// Partition.Close lifting protection), then re-check from scratch
		// (the wanted page may have been loaded meanwhile).
		bp.cond.Wait()
	}
	bp.stats.Misses++
	if requester != nil {
		requester.stats.Misses++
	}
	data, err := bp.pager.ReadPage(id)
	if err != nil {
		return nil, err
	}
	//lint:ignore hotalloc miss path: the frame allocation is paid once per page load, never on the warm hit path the zero-alloc guard covers
	fr := &frame{id: id, data: data, pins: 1}
	if requester != nil {
		fr.owner = requester
		requester.held++
	}
	bp.frames[id] = fr
	return fr.data, nil
}

// Release unpins page id. Fully unpinned pages become evictable (most
// recently used first to be kept) and wake any Get waiting for a frame.
//
//gmine:hotpath
func (bp *BufferPool) Release(id PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, ok := bp.frames[id]
	if !ok || fr.pins == 0 {
		return
	}
	fr.pins--
	if fr.pins == 0 {
		bp.lruPushFront(fr)
		bp.cond.Broadcast()
	}
}

// Stats returns a snapshot of the pool counters.
func (bp *BufferPool) Stats() Stats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// ResetStats zeroes the counters (used between experiment phases).
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats = Stats{}
}

// Resident returns the number of cached pages.
func (bp *BufferPool) Resident() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}

// Capacity returns the configured frame capacity.
func (bp *BufferPool) Capacity() int { return bp.cap }

// Reserved returns the frames currently reserved by open partitions.
func (bp *BufferPool) Reserved() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.reserved
}

// PinnedFrames returns the number of resident frames with a nonzero pin
// count. A quiescent pool reports 0; the chaos/cancellation tests assert
// exactly that after every aborted query, since a cancelled sweep that
// leaks a pin would deadlock eviction forever.
func (bp *BufferPool) PinnedFrames() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	n := 0
	for _, fr := range bp.frames {
		if fr.pins > 0 {
			n++
		}
	}
	return n
}

// --- Partitions -----------------------------------------------------------

// Partition is a PagePool view of the pool with its own frame reservation:
// pages loaded (or re-hit) through the view are owned by it, and while the
// view owns no more frames than its quota those frames cannot be evicted
// by other requesters — only by the view itself. Frames beyond the quota
// spill into the shared remainder's economy and are fair game for anyone.
//
// The engine opens one partition per whole-graph query, so a cold
// PageRank sweeping the entire file can no longer flush a concurrent
// session's hot extraction working set: the sweep churns its own quota
// plus the unreserved remainder, and the other query's reserved frames
// survive. Close returns the reservation and demotes owned frames to
// shared; a Partition must not be used after Close.
type Partition struct {
	bp    *BufferPool
	quota int
	held  int // resident frames currently owned by this partition
	stats Stats
	// heat is the partition's decayed access counter: one increment per
	// Get through the view, halved on the pool's global decay ticks — the
	// per-query share of the pool-wide heat the tiering promoter reads.
	heat   float64
	closed bool
	// parent is set on shard partitions carved by Split: closing a child
	// folds its counters into the parent (and appends a snapshot to the
	// parent's shardStats), so the parent's totals keep describing the
	// whole query after its shards finish.
	parent     *Partition
	shardStats []PartitionStats
}

// Partition reserves up to frames frames for a new view. The request is
// clamped to what is still unreserved (keeping one frame always shared, so
// reservations can never starve other readers); a fully reserved pool
// yields a quota-0 view that still tracks per-query stats but enjoys no
// protection. frames <= 0 also yields a quota-0 view.
func (bp *BufferPool) Partition(frames int) *Partition {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	avail := bp.cap - 1 - bp.reserved
	if frames > avail {
		frames = avail
	}
	if frames < 0 {
		frames = 0
	}
	p := &Partition{bp: bp, quota: frames}
	bp.reserved += frames
	bp.parts = append(bp.parts, p)
	return p
}

// Get pins page id through the partition (PagePool). After Close the view
// degrades to the shared remainder (checked under the pool lock).
//
//gmine:hotpath
func (p *Partition) Get(id PageID) ([]byte, error) {
	return p.bp.get(id, p)
}

// Release unpins page id (PagePool).
//
//gmine:hotpath
func (p *Partition) Release(id PageID) { p.bp.Release(id) }

// Split carves k shard partitions out of p's remaining quota, each
// receiving quota/k frames (p keeps the remainder), so the goroutines of
// one sharded whole-graph sweep pin through private reservations: a shard
// churning its slice of the file cannot evict a sibling shard's decode
// windows, which is the same protection Partition gives concurrent
// queries, one level down. The children are full partitions — their
// frames are protected by their own quotas, they appear in Partitions()
// — but closing one returns its quota to the POOL while folding its
// counters into p and appending a per-shard snapshot to p.ShardStats, so
// p's totals still describe the whole query and the per-shard pin
// distribution survives for the trace. Close the children before p; a
// k < 1 request and a closed p both yield usable quota-0 children.
func (p *Partition) Split(k int) []*Partition {
	if k < 1 {
		k = 1
	}
	bp := p.bp
	bp.mu.Lock()
	defer bp.mu.Unlock()
	share := 0
	if !p.closed {
		share = p.quota / k
	}
	children := make([]*Partition, k)
	for i := range children {
		c := &Partition{bp: bp, quota: share, parent: p}
		children[i] = c
		bp.parts = append(bp.parts, c)
	}
	// The reservation moves from p to its children; bp.reserved is
	// unchanged, so the invariant reserved <= cap-1 keeps holding without
	// re-clamping.
	p.quota -= share * k
	return children
}

// ShardStats returns the folded per-shard counter snapshots of children
// carved by Split and since closed, in close order.
func (p *Partition) ShardStats() []PartitionStats {
	p.bp.mu.Lock()
	defer p.bp.mu.Unlock()
	return append([]PartitionStats(nil), p.shardStats...)
}

// Close returns the reservation to the pool and demotes the partition's
// frames to the shared remainder (they stay resident and LRU-ordered, just
// unprotected). Idempotent.
func (p *Partition) Close() {
	bp := p.bp
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	if p.parent != nil && !p.parent.closed {
		// A shard partition hands its reservation BACK to the query
		// partition it was carved from (bp.reserved is unchanged), so the
		// next sharded solve of the same query re-splits the full quota,
		// and folds its activity into the parent's totals plus a per-shard
		// snapshot for the trace's pin distribution.
		p.parent.quota += p.quota
		p.parent.shardStats = append(p.parent.shardStats, PartitionStats{Quota: p.quota, Held: p.held, Heat: p.heat, Stats: p.stats})
		p.parent.stats.Hits += p.stats.Hits
		p.parent.stats.Misses += p.stats.Misses
		p.parent.stats.Evictions += p.stats.Evictions
		p.parent.heat += p.heat
	} else {
		bp.reserved -= p.quota
	}
	p.quota = 0
	for _, fr := range bp.frames {
		if fr.owner == p {
			fr.owner = nil
		}
	}
	p.held = 0
	for i, q := range bp.parts {
		if q == p {
			bp.parts = append(bp.parts[:i], bp.parts[i+1:]...)
			break
		}
	}
	// Frames protected by this partition are now evictable; wake waiters.
	bp.cond.Broadcast()
}

// PartitionStats snapshots one partition's reservation and counters.
// Heat is the partition's decayed access counter (see Partition.heat),
// folded into the parent's snapshot list when a Split child closes.
type PartitionStats struct {
	Quota int
	Held  int // resident frames the partition currently owns
	Heat  float64
	Stats
}

// Stats returns a snapshot of the partition's counters.
func (p *Partition) Stats() PartitionStats {
	p.bp.mu.Lock()
	defer p.bp.mu.Unlock()
	return PartitionStats{Quota: p.quota, Held: p.held, Heat: p.heat, Stats: p.stats}
}

// Partitions snapshots the open partitions in creation order — the
// observability hook behind the per-partition /healthz stats.
func (bp *BufferPool) Partitions() []PartitionStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	out := make([]PartitionStats, len(bp.parts))
	for i, p := range bp.parts {
		out[i] = PartitionStats{Quota: p.quota, Held: p.held, Heat: p.heat, Stats: p.stats}
	}
	return out
}
