package storage

import (
	"sync"
)

// Stats counts buffer pool activity; read with BufferPool.Stats.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

type frame struct {
	id   PageID
	data []byte
	pins int
	// Intrusive LRU links, valid only while inLRU (the frame is unpinned
	// and evictable). Intrusive rather than container/list so the hottest
	// pool operations — hit, pin, release — allocate nothing: the paged
	// kernels call Get/Release once per page per node visit, and a
	// list.Element allocation per release was the last per-call garbage on
	// the zero-alloc NeighborsInto path.
	prev, next *frame
	inLRU      bool
}

// BufferPool caches page payloads with LRU eviction. Pages are pinned while
// handed out and must be released; only unpinned pages are evictable.
//
// GMine's interactive navigation reads the same sibling communities
// repeatedly; the pool is what makes a focus change touch the disk only for
// pages outside the current working set (experiment E10).
type BufferPool struct {
	mu     sync.Mutex
	cond   *sync.Cond // signaled when a frame becomes unpinned
	pager  *Pager
	cap    int
	frames map[PageID]*frame
	// LRU of unpinned frames: head = most recent, tail = next eviction
	// victim.
	head, tail *frame
	stats      Stats
}

// NewBufferPool wraps pager with a pool holding up to capacity pages.
func NewBufferPool(pager *Pager, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	bp := &BufferPool{
		pager:  pager,
		cap:    capacity,
		frames: make(map[PageID]*frame, capacity),
	}
	bp.cond = sync.NewCond(&bp.mu)
	return bp
}

// lruPushFront marks fr most recently used. Caller holds bp.mu.
func (bp *BufferPool) lruPushFront(fr *frame) {
	fr.prev = nil
	fr.next = bp.head
	if bp.head != nil {
		bp.head.prev = fr
	}
	bp.head = fr
	if bp.tail == nil {
		bp.tail = fr
	}
	fr.inLRU = true
}

// lruRemove unlinks fr from the eviction order. Caller holds bp.mu.
func (bp *BufferPool) lruRemove(fr *frame) {
	if !fr.inLRU {
		return
	}
	if fr.prev != nil {
		fr.prev.next = fr.next
	} else {
		bp.head = fr.next
	}
	if fr.next != nil {
		fr.next.prev = fr.prev
	} else {
		bp.tail = fr.prev
	}
	fr.prev, fr.next = nil, nil
	fr.inLRU = false
}

// Get returns the payload of page id, pinning it. The returned slice is the
// pool's frame; callers must not retain it past Release and must not write
// to it.
//
// When every frame is pinned by concurrent readers, Get waits for a
// Release instead of failing, so a pool smaller than the momentary reader
// count degrades to serialized paging rather than spurious I/O errors
// (e.g. a tiny -pool with a wide extraction worker fan-out). The waiting
// is deadlock-free as long as no caller holds a pin while requesting
// another page — every reader in this repo (blob, run, leaf) pins exactly
// one page at a time and releases it before the next Get; keep it that
// way.
func (bp *BufferPool) Get(id PageID) ([]byte, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for {
		if fr, ok := bp.frames[id]; ok {
			bp.stats.Hits++
			fr.pins++
			bp.lruRemove(fr)
			return fr.data, nil
		}
		if len(bp.frames) < bp.cap {
			break
		}
		if victim := bp.tail; victim != nil {
			bp.lruRemove(victim)
			delete(bp.frames, victim.id)
			bp.stats.Evictions++
			continue
		}
		// Every frame is pinned: wait for a Release, then re-check from
		// scratch (the wanted page may have been loaded meanwhile).
		bp.cond.Wait()
	}
	bp.stats.Misses++
	data, err := bp.pager.ReadPage(id)
	if err != nil {
		return nil, err
	}
	fr := &frame{id: id, data: data, pins: 1}
	bp.frames[id] = fr
	return fr.data, nil
}

// Release unpins page id. Fully unpinned pages become evictable (most
// recently used first to be kept) and wake any Get waiting for a frame.
func (bp *BufferPool) Release(id PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, ok := bp.frames[id]
	if !ok || fr.pins == 0 {
		return
	}
	fr.pins--
	if fr.pins == 0 {
		bp.lruPushFront(fr)
		bp.cond.Broadcast()
	}
}

// Stats returns a snapshot of the pool counters.
func (bp *BufferPool) Stats() Stats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// ResetStats zeroes the counters (used between experiment phases).
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats = Stats{}
}

// Resident returns the number of cached pages.
func (bp *BufferPool) Resident() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}

// Capacity returns the configured frame capacity.
func (bp *BufferPool) Capacity() int { return bp.cap }
