package storage

import (
	"container/list"
	"fmt"
	"sync"
)

// Stats counts buffer pool activity; read with BufferPool.Stats.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

type frame struct {
	id   PageID
	data []byte
	pins int
	elem *list.Element // position in LRU list; nil while pinned
}

// BufferPool caches page payloads with LRU eviction. Pages are pinned while
// handed out and must be released; only unpinned pages are evictable.
//
// GMine's interactive navigation reads the same sibling communities
// repeatedly; the pool is what makes a focus change touch the disk only for
// pages outside the current working set (experiment E10).
type BufferPool struct {
	mu     sync.Mutex
	pager  *Pager
	cap    int
	frames map[PageID]*frame
	lru    *list.List // front = most recent; values are PageID
	stats  Stats
}

// NewBufferPool wraps pager with a pool holding up to capacity pages.
func NewBufferPool(pager *Pager, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		pager:  pager,
		cap:    capacity,
		frames: make(map[PageID]*frame, capacity),
		lru:    list.New(),
	}
}

// Get returns the payload of page id, pinning it. The returned slice is the
// pool's frame; callers must not retain it past Release and must not write
// to it.
func (bp *BufferPool) Get(id PageID) ([]byte, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if fr, ok := bp.frames[id]; ok {
		bp.stats.Hits++
		fr.pins++
		if fr.elem != nil {
			bp.lru.Remove(fr.elem)
			fr.elem = nil
		}
		return fr.data, nil
	}
	bp.stats.Misses++
	if err := bp.evictLocked(); err != nil {
		return nil, err
	}
	data, err := bp.pager.ReadPage(id)
	if err != nil {
		return nil, err
	}
	fr := &frame{id: id, data: data, pins: 1}
	bp.frames[id] = fr
	return fr.data, nil
}

// evictLocked makes room for one more frame if at capacity.
func (bp *BufferPool) evictLocked() error {
	for len(bp.frames) >= bp.cap {
		back := bp.lru.Back()
		if back == nil {
			return fmt.Errorf("storage: buffer pool exhausted: all %d frames pinned", bp.cap)
		}
		victim := back.Value.(PageID)
		bp.lru.Remove(back)
		delete(bp.frames, victim)
		bp.stats.Evictions++
	}
	return nil
}

// Release unpins page id. Fully unpinned pages become evictable (most
// recently used first to be kept).
func (bp *BufferPool) Release(id PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, ok := bp.frames[id]
	if !ok || fr.pins == 0 {
		return
	}
	fr.pins--
	if fr.pins == 0 {
		fr.elem = bp.lru.PushFront(id)
	}
}

// Stats returns a snapshot of the pool counters.
func (bp *BufferPool) Stats() Stats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// ResetStats zeroes the counters (used between experiment phases).
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats = Stats{}
}

// Resident returns the number of cached pages.
func (bp *BufferPool) Resident() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}

// Capacity returns the configured frame capacity.
func (bp *BufferPool) Capacity() int { return bp.cap }
