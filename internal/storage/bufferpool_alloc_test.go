package storage

import "testing"

// TestBufferPoolWarmPathAllocationFree guards the pin hot path the paged
// sweep kernels sit on: once a page is resident, Get/Release must not
// allocate — directly on the pool and through a query Partition (the
// per-query accounting the trace instrumentation reads is plain counter
// arithmetic, so routing pins through a partition must stay free too).
// Observability reads these counters at scrape/release time; this test
// pins that the instrumented path itself added no per-pin work.
func TestBufferPoolWarmPathAllocationFree(t *testing.T) {
	bp, ids := partitionFile(t, 4, 4)
	for _, id := range ids {
		touch(t, bp, id) // fault everything in: measurements below are warm hits
	}

	id := ids[0]
	if allocs := testing.AllocsPerRun(200, func() {
		buf, err := bp.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		_ = buf
		bp.Release(id)
	}); allocs > 0 {
		t.Errorf("warm BufferPool Get/Release allocates %.2f per op, want 0", allocs)
	}

	part := bp.Partition(2)
	defer part.Close()
	touch(t, part, id) // adopt the frame into the partition's accounting
	if allocs := testing.AllocsPerRun(200, func() {
		buf, err := part.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		_ = buf
		part.Release(id)
	}); allocs > 0 {
		t.Errorf("warm Partition Get/Release allocates %.2f per op, want 0", allocs)
	}

	st := part.Stats()
	if st.Hits == 0 {
		t.Fatal("partition recorded no hits — warm path not exercised")
	}
}
