package storage

import (
	"os"
	"path/filepath"
	"testing"
)

// Fault-injection tests: the pager must detect every corruption mode a
// crashed or truncated write can leave behind, never returning bad data.

func buildFile(t *testing.T) (string, PageID) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "f.gmine")
	p, err := Create(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	id, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WritePage(id, []byte("precious bytes")); err != nil {
		t.Fatal(err)
	}
	if err := p.SetMeta([]byte("m")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	return path, id
}

func TestFaultTruncatedToPartialPage(t *testing.T) {
	path, _ := buildFile(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Torn write: the file ends mid-page.
	if err := os.WriteFile(path, raw[:len(raw)-100], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, true); err == nil {
		t.Fatal("opened a file with a torn trailing page")
	}
}

func TestFaultTruncatedToWholePage(t *testing.T) {
	path, id := buildFile(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The data page vanished entirely but the file is page-aligned: open
	// succeeds, the read of the missing page must fail cleanly.
	if err := os.WriteFile(path, raw[:512], 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.ReadPage(id); err == nil {
		t.Fatal("read of truncated-away page succeeded")
	}
}

func TestFaultBitFlipInChecksum(t *testing.T) {
	path, id := buildFile(t)
	raw, _ := os.ReadFile(path)
	raw[1023] ^= 0x01 // last byte of the data page = checksum byte
	os.WriteFile(path, raw, 0o644)
	p, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.ReadPage(id); err == nil {
		t.Fatal("checksum flip not detected")
	}
}

func TestFaultVersionBump(t *testing.T) {
	path, _ := buildFile(t)
	raw, _ := os.ReadFile(path)
	raw[4] = 0xFF // version field
	os.WriteFile(path, raw, 0o644)
	if _, err := Open(path, true); err == nil {
		t.Fatal("opened unknown version")
	}
}

func TestFaultZeroedSuperblock(t *testing.T) {
	path, _ := buildFile(t)
	raw, _ := os.ReadFile(path)
	for i := 0; i < 32; i++ {
		raw[i] = 0
	}
	os.WriteFile(path, raw, 0o644)
	if _, err := Open(path, true); err == nil {
		t.Fatal("opened zeroed superblock")
	}
}

func TestFaultCorruptPageSizeField(t *testing.T) {
	path, _ := buildFile(t)
	raw, _ := os.ReadFile(path)
	raw[8], raw[9], raw[10], raw[11] = 1, 0, 0, 0 // pageSize = 1
	os.WriteFile(path, raw, 0o644)
	if _, err := Open(path, true); err == nil {
		t.Fatal("opened corrupt page size")
	}
}

func TestFaultEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, true); err == nil {
		t.Fatal("opened empty file")
	}
}

func TestFaultBlobLengthBeyondFile(t *testing.T) {
	// A blob whose recorded length points past the end of the file must
	// fail the read, not return garbage.
	path := filepath.Join(t.TempDir(), "b.gmine")
	p, err := Create(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	id, err := WriteBlob(p, []byte("short"))
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	raw, _ := os.ReadFile(path)
	// Blob length lives in the first 4 payload bytes of the blob page.
	off := int(id) * 256
	raw[off] = 0xFF
	raw[off+1] = 0xFF
	os.WriteFile(path, raw, 0o644)
	p2, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	// The checksum now fails (we modified payload without resealing) —
	// either way the read must error.
	if _, err := ReadBlobDirect(p2, id); err == nil {
		t.Fatal("oversized blob length not detected")
	}
}
