package storage

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// FaultKind enumerates the read-path failures a FaultInjector can produce.
type FaultKind int

const (
	// FaultErr fails the read with an ErrTransient-marked error.
	FaultErr FaultKind = iota
	// FaultShort delivers roughly half the requested bytes.
	FaultShort
	// FaultFlip flips one bit of the delivered buffer — the disk copy
	// stays intact, so the resulting checksum mismatch heals on re-read.
	FaultFlip
	// FaultSlow delays the read without failing it.
	FaultSlow
)

func (k FaultKind) String() string {
	switch k {
	case FaultErr:
		return "err"
	case FaultShort:
		return "short"
	case FaultFlip:
		return "flip"
	case FaultSlow:
		return "slow"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultConfig describes a fault-injection regime: with probability Rate
// each eligible read draws one of Kinds (uniformly); Latency additionally
// delays every injected fault (and every FaultSlow read). The zero config
// injects nothing.
type FaultConfig struct {
	Rate    float64
	Seed    int64
	Latency time.Duration
	Kinds   []FaultKind
}

// ParseFaultConfig parses the -chaos flag syntax:
//
//	rate=0.02,seed=1,latency=200us,kinds=flip+err+short
//
// Fields may appear in any order; omitted fields default to seed=1,
// latency=0 and kinds=flip+err+short (everything recoverable). rate is
// required and must be in (0, 1].
func ParseFaultConfig(spec string) (FaultConfig, error) {
	cfg := FaultConfig{Seed: 1, Kinds: []FaultKind{FaultFlip, FaultErr, FaultShort}}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return cfg, fmt.Errorf("storage: chaos field %q is not key=value", field)
		}
		var err error
		switch key {
		case "rate":
			cfg.Rate, err = strconv.ParseFloat(val, 64)
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		case "latency":
			cfg.Latency, err = time.ParseDuration(val)
		case "kinds":
			cfg.Kinds = cfg.Kinds[:0]
			for _, name := range strings.Split(val, "+") {
				switch name {
				case "err":
					cfg.Kinds = append(cfg.Kinds, FaultErr)
				case "short":
					cfg.Kinds = append(cfg.Kinds, FaultShort)
				case "flip":
					cfg.Kinds = append(cfg.Kinds, FaultFlip)
				case "slow":
					cfg.Kinds = append(cfg.Kinds, FaultSlow)
				default:
					return cfg, fmt.Errorf("storage: unknown chaos kind %q (want err, short, flip or slow)", name)
				}
			}
		default:
			return cfg, fmt.Errorf("storage: unknown chaos field %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("storage: chaos field %q: %w", field, err)
		}
	}
	if cfg.Rate <= 0 || cfg.Rate > 1 {
		return cfg, fmt.Errorf("storage: chaos rate %g out of (0, 1]", cfg.Rate)
	}
	if len(cfg.Kinds) == 0 {
		return cfg, fmt.Errorf("storage: chaos kinds list is empty")
	}
	return cfg, nil
}

// Wrap interposes a FaultInjector configured by cfg over f. A zero-rate
// config returns f unchanged.
func (cfg FaultConfig) Wrap(f File) File {
	if cfg.Rate <= 0 {
		return f
	}
	inj := NewFaultInjector(f, cfg.Seed)
	inj.SetRate(cfg.Rate, cfg.Kinds...)
	inj.SetLatency(cfg.Latency)
	return inj
}

// FaultInjectorStats counts what an injector has done.
type FaultInjectorStats struct {
	Reads    uint64 // eligible ReadAt calls observed
	Injected uint64 // reads that drew a fault
}

// FaultInjector wraps a File and injects read faults: scripted (an
// explicit queue consumed one entry per read — deterministic tests) and
// probabilistic (a seeded rate — chaos soak and the -chaos serve flag).
// Reads at offset 0 are never faulted: the superblock is read once during
// Open, outside the pager's retry loop, and poisoning it would fail every
// open rather than exercise the recovery machinery.
//
// Writes, Sync and Close pass through untouched — GMine's stores are
// write-once/read-many and the resilience layer under test is the read
// path.
type FaultInjector struct {
	f File

	mu      sync.Mutex
	rng     *rand.Rand
	rate    float64
	kinds   []FaultKind
	latency time.Duration
	script  []FaultKind
	stats   FaultInjectorStats
}

// NewFaultInjector wraps f. With no script and no rate set it is a
// transparent pass-through.
func NewFaultInjector(f File, seed int64) *FaultInjector {
	return &FaultInjector{f: f, rng: rand.New(rand.NewSource(seed))}
}

// SetRate arms probabilistic injection: each eligible read faults with
// probability rate, drawing uniformly from kinds (default: flip, err,
// short).
func (fi *FaultInjector) SetRate(rate float64, kinds ...FaultKind) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.rate = rate
	if len(kinds) == 0 {
		kinds = []FaultKind{FaultFlip, FaultErr, FaultShort}
	}
	fi.kinds = append(fi.kinds[:0], kinds...)
}

// SetLatency delays every injected fault (and every FaultSlow) by d.
func (fi *FaultInjector) SetLatency(d time.Duration) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.latency = d
}

// Script queues faults consumed one per eligible read, before any
// probabilistic draw. Deterministic: the next len(kinds) reads fault in
// exactly this order.
func (fi *FaultInjector) Script(kinds ...FaultKind) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.script = append(fi.script, kinds...)
}

// Stats snapshots the injector's counters.
func (fi *FaultInjector) Stats() FaultInjectorStats {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.stats
}

// draw picks the fault (if any) for one eligible read.
func (fi *FaultInjector) draw() (FaultKind, time.Duration, bool) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.stats.Reads++
	if len(fi.script) > 0 {
		k := fi.script[0]
		fi.script = fi.script[1:]
		fi.stats.Injected++
		return k, fi.latency, true
	}
	if fi.rate > 0 && fi.rng.Float64() < fi.rate {
		k := fi.kinds[fi.rng.Intn(len(fi.kinds))]
		fi.stats.Injected++
		return k, fi.latency, true
	}
	return 0, 0, false
}

func (fi *FaultInjector) ReadAt(p []byte, off int64) (int, error) {
	if off == 0 {
		return fi.f.ReadAt(p, off)
	}
	kind, latency, inject := fi.draw()
	if !inject {
		return fi.f.ReadAt(p, off)
	}
	if latency > 0 {
		time.Sleep(latency)
	}
	switch kind {
	case FaultErr:
		return 0, fmt.Errorf("injected read fault at offset %d: %w", off, ErrTransient)
	case FaultShort:
		n, err := fi.f.ReadAt(p[:len(p)/2], off)
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("injected short read at offset %d (%d of %d bytes): %w", off, n, len(p), ErrTransient)
	case FaultFlip:
		n, err := fi.f.ReadAt(p, off)
		if n > 0 {
			// Flip one bit somewhere in the delivered buffer; the CRC
			// check downstream turns this into a healing checksum
			// mismatch. Position from the seeded rng for reproducibility.
			fi.mu.Lock()
			bit := fi.rng.Intn(n * 8)
			fi.mu.Unlock()
			p[bit/8] ^= 1 << (bit % 8)
		}
		return n, err
	case FaultSlow:
		return fi.f.ReadAt(p, off)
	}
	return fi.f.ReadAt(p, off)
}

func (fi *FaultInjector) WriteAt(p []byte, off int64) (int, error) { return fi.f.WriteAt(p, off) }
func (fi *FaultInjector) Sync() error                              { return fi.f.Sync() }
func (fi *FaultInjector) Close() error                             { return fi.f.Close() }
func (fi *FaultInjector) Size() (int64, error)                     { return fi.f.Size() }
