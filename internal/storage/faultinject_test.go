package storage

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// openInjected reopens a page file with a FaultInjector interposed.
func openInjected(t *testing.T, path string, seed int64) (*Pager, *FaultInjector) {
	t.Helper()
	var inj *FaultInjector
	p, err := OpenWrapped(path, true, func(f File) File {
		inj = NewFaultInjector(f, seed)
		return inj
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, inj
}

func TestRetryHealsScriptedTransients(t *testing.T) {
	path, id := buildFile(t)
	clean, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	want, err := clean.ReadPage(id)
	if err != nil {
		t.Fatal(err)
	}
	clean.Close()

	p, inj := openInjected(t, path, 1)
	defer p.Close()
	// One fault of each recoverable kind, each healed by the next re-read.
	for _, kind := range []FaultKind{FaultErr, FaultShort, FaultFlip} {
		inj.Script(kind)
		got, err := p.ReadPage(id)
		if err != nil {
			t.Fatalf("injected %v did not heal: %v", kind, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("injected %v returned wrong bytes", kind)
		}
	}
	rs := p.RetryStats()
	if rs.Healed != 3 || rs.Retries < 3 || rs.Failed != 0 {
		t.Fatalf("retry stats = %+v, want 3 healed, >=3 retries, 0 failed", rs)
	}
}

func TestRetryExhaustionIsPermanent(t *testing.T) {
	path, id := buildFile(t)
	p, inj := openInjected(t, path, 1)
	defer p.Close()
	// Every attempt in the budget faults: the read must surface an error
	// classified permanent (Failed), not loop forever.
	kinds := make([]FaultKind, readAttempts)
	for i := range kinds {
		kinds[i] = FaultErr
	}
	inj.Script(kinds...)
	if _, err := p.ReadPage(id); err == nil {
		t.Fatal("read succeeded with every attempt faulted")
	} else if !errors.Is(err, ErrTransient) {
		t.Fatalf("exhausted error should carry the underlying cause, got %v", err)
	}
	rs := p.RetryStats()
	if rs.Failed != 1 || rs.Healed != 0 {
		t.Fatalf("retry stats = %+v, want 1 failed, 0 healed", rs)
	}
	// The injector is drained; the next read is clean.
	if _, err := p.ReadPage(id); err != nil {
		t.Fatalf("post-exhaustion clean read failed: %v", err)
	}
}

func TestRetryDoesNotMaskPersistentCorruption(t *testing.T) {
	// An on-disk flip (not injected: the stored bytes are wrong) must still
	// fail after the retry budget — retries must never "heal" real rot.
	path, id := buildFile(t)
	p, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Corrupt through a writable second handle while p serves reads.
	w, err := openOSFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteAt([]byte{0xFF}, int64(id)*512+7); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := p.ReadPage(id); err == nil {
		t.Fatal("persistent corruption read back clean")
	} else if !errors.Is(err, errChecksum) {
		t.Fatalf("want checksum mismatch, got %v", err)
	}
	if rs := p.RetryStats(); rs.Failed != 1 || rs.Retries != readAttempts-1 {
		t.Fatalf("retry stats = %+v, want full retry budget spent then 1 failed", rs)
	}
}

func TestProbabilisticInjectionIsSeeded(t *testing.T) {
	path, id := buildFile(t)
	run := func() FaultInjectorStats {
		p, inj := openInjected(t, path, 42)
		defer p.Close()
		// Keep the rate low enough that a full retry budget of consecutive
		// faults (rate^readAttempts per read) is vanishingly unlikely.
		inj.SetRate(0.1)
		for i := 0; i < 100; i++ {
			if _, err := p.ReadPage(id); err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
		}
		return inj.Stats()
	}
	a, b := run(), run()
	if a.Injected == 0 {
		t.Fatal("10% rate over 100 reads injected nothing")
	}
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestInjectorExemptsSuperblock(t *testing.T) {
	path, _ := buildFile(t)
	// Rate 1 faults every eligible read; Open must still succeed because
	// the superblock (offset 0) is exempt.
	p, err := OpenWrapped(path, true, FaultConfig{Rate: 1, Seed: 7, Kinds: []FaultKind{FaultErr}}.Wrap)
	if err != nil {
		t.Fatalf("open under full-rate injection failed: %v", err)
	}
	p.Close()
}

func TestParseFaultConfig(t *testing.T) {
	cfg, err := ParseFaultConfig("rate=0.02,seed=9,latency=200us,kinds=flip+err")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Rate != 0.02 || cfg.Seed != 9 || cfg.Latency != 200*time.Microsecond {
		t.Fatalf("parsed %+v", cfg)
	}
	if len(cfg.Kinds) != 2 || cfg.Kinds[0] != FaultFlip || cfg.Kinds[1] != FaultErr {
		t.Fatalf("parsed kinds %v", cfg.Kinds)
	}
	if cfg, err := ParseFaultConfig("rate=0.5"); err != nil || len(cfg.Kinds) != 3 {
		t.Fatalf("defaults: cfg=%+v err=%v", cfg, err)
	}
	for _, bad := range []string{"", "rate=0", "rate=2", "rate=0.1,kinds=lava", "nonsense", "rate=0.1,seed=x"} {
		if _, err := ParseFaultConfig(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}
