package storage

import (
	"errors"
	"os"
)

// File is the pager's backing-store abstraction: the exact subset of
// *os.File the pager uses. Production code always runs over a real file
// (osFile below); tests and the chaos-serving mode interpose a
// FaultInjector to exercise the transient-read retry and fault-epoch
// machinery without touching the disk underneath.
type File interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Sync() error
	Close() error
	// Size returns the current file length in bytes (os.File.Stat().Size()).
	Size() (int64, error)
}

// ErrTransient marks an injected (or otherwise known-recoverable) I/O
// error: the read may succeed if simply retried. The pager's read path
// retries errors.Is(err, ErrTransient) failures with jittered backoff
// before classifying them permanent; everything that escapes the pager has
// therefore already survived classification and retry.
var ErrTransient = errors.New("storage: transient I/O error")

// IsTransientRead reports whether a read failure is worth retrying:
// explicitly marked transient errors, short reads (the kernel may deliver
// fewer bytes under memory pressure or signal interruption), and checksum
// mismatches (a torn or bit-flipped buffer heals on re-read when the disk
// copy is intact) all qualify. Structural errors — unallocated pages,
// closed files — do not.
func IsTransientRead(err error) bool {
	return errors.Is(err, ErrTransient) ||
		errors.Is(err, errShortRead) ||
		errors.Is(err, errChecksum)
}

// errShortRead classifies reads that returned fewer bytes than requested
// without a hard error; the retry loop re-reads the full page.
var errShortRead = errors.New("storage: short page read")

// errChecksum underlies every verifyCRC failure so the retry loop can
// recognize "payload arrived, bits wrong" — the one corruption mode that
// is transient when it heals on re-read and permanent when it does not.
var errChecksum = errors.New("checksum mismatch")

// osFile adapts *os.File to the File interface (Stat -> Size).
type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// openOSFile opens path with the pager's access mode as a File.
func openOSFile(path string, readOnly bool) (File, error) {
	flag := os.O_RDWR
	if readOnly {
		flag = os.O_RDONLY
	}
	f, err := os.OpenFile(path, flag, 0)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}
