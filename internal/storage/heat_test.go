package storage

import "testing"

// TestHotRangesRanking: the buckets a workload hammers come back first,
// scored by access count, and untouched buckets never appear.
func TestHotRangesRanking(t *testing.T) {
	pool, ids := partitionFile(t, 64, 8)
	// ids[40] lives ~5 buckets away from ids[0] (8 pages per bucket), so
	// the two loops heat two distinct buckets unequally.
	for i := 0; i < 20; i++ {
		touch(t, pool, ids[40])
	}
	for i := 0; i < 5; i++ {
		touch(t, pool, ids[0])
	}
	hot := pool.HotRanges(10)
	if len(hot) < 2 {
		t.Fatalf("expected >= 2 hot buckets, got %d: %+v", len(hot), hot)
	}
	if hot[0].Score < hot[1].Score {
		t.Fatalf("hot ranges not sorted by score: %+v", hot)
	}
	// The hottest bucket must cover ids[40] and carry (at least) its 20
	// accesses; the runner-up covers ids[0].
	in := func(hr HotRange, id PageID) bool {
		return id >= hr.First && id < hr.First+PageID(hr.Pages)
	}
	if !in(hot[0], ids[40]) || hot[0].Score < 20 {
		t.Fatalf("hottest bucket %+v does not reflect the 20 touches of page %d", hot[0], ids[40])
	}
	if !in(hot[1], ids[0]) {
		t.Fatalf("second bucket %+v does not cover page %d", hot[1], ids[0])
	}
	// k truncates, never pads.
	if got := pool.HotRanges(1); len(got) != 1 || !in(got[0], ids[40]) {
		t.Fatalf("HotRanges(1) = %+v", got)
	}
	if got := pool.HotRanges(0); got != nil {
		t.Fatalf("HotRanges(0) = %+v, want nil", got)
	}
}

// TestHeatDecay: a bucket the workload abandons cools down — after a full
// decay period its score is halved, so old heat cannot outrank current
// traffic forever.
func TestHeatDecay(t *testing.T) {
	pool, ids := partitionFile(t, 64, 8)
	for i := 0; i < 100; i++ {
		touch(t, pool, ids[0])
	}
	before := pool.HotRanges(1)
	if len(before) != 1 || before[0].Score < 100 {
		t.Fatalf("warmup: %+v", before)
	}
	// Drive a full decay period of accesses elsewhere.
	for i := 0; i < heatDecayEvery; i++ {
		touch(t, pool, ids[40])
	}
	hot := pool.HotRanges(10)
	var cooled float64
	for _, hr := range hot {
		if ids[0] >= hr.First && ids[0] < hr.First+PageID(hr.Pages) {
			cooled = hr.Score
		}
	}
	if cooled <= 0 || cooled > before[0].Score/2+1 {
		t.Fatalf("abandoned bucket score %v after decay, want <= %v", cooled, before[0].Score/2+1)
	}
}

// TestPartitionHeat: accesses through a partition view are charged to the
// partition's own heat counter, shard children fold theirs into the parent
// on Close, and the pool-wide buckets see every access regardless of which
// view made it.
func TestPartitionHeat(t *testing.T) {
	pool, ids := partitionFile(t, 64, 8)
	p := pool.Partition(4)
	defer p.Close()
	for i := 0; i < 10; i++ {
		touch(t, p, ids[0])
	}
	if st := p.Stats(); st.Heat != 10 {
		t.Fatalf("partition heat = %v, want 10", st.Heat)
	}
	if parts := pool.Partitions(); len(parts) != 1 || parts[0].Heat != 10 {
		t.Fatalf("Partitions() heat: %+v", parts)
	}

	shards := p.Split(2)
	for i := 0; i < 3; i++ {
		touch(t, shards[0], ids[8])
	}
	touch(t, shards[1], ids[16])
	shards[0].Close()
	shards[1].Close()
	if st := p.Stats(); st.Heat != 14 {
		t.Fatalf("parent heat after shard close = %v, want 14", st.Heat)
	}
	ss := p.ShardStats()
	if len(ss) != 2 || ss[0].Heat != 3 || ss[1].Heat != 1 {
		t.Fatalf("shard heat snapshots: %+v", ss)
	}

	// The pool buckets saw all 14 accesses too (plus the initial loads).
	var total float64
	for _, hr := range pool.HotRanges(10) {
		total += hr.Score
	}
	if total < 14 {
		t.Fatalf("pool-wide heat %v, want >= 14", total)
	}
}
