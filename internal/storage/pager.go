// Package storage implements GMine's single-file persistence: a fixed-size
// page file with CRC-32C page checksums, an LRU buffer pool with pin
// counts, and a blob layer for variable-length records spanning page runs.
//
// The paper stores the whole G-Tree "in a single file and the nodes are
// transferred to main memory only when necessary"; this package is that
// substrate. The store is write-once/read-many (the hierarchy is built in
// one pass and then explored), so there is no free list — pages are only
// appended.
package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"os"
	"sync"
	"time"
)

// PageID identifies a page in the file. Page 0 is the superblock.
type PageID uint32

const (
	// DefaultPageSize is used by Create when 0 is passed.
	DefaultPageSize = 4096
	// MinPageSize bounds how small pages may be (superblock needs room).
	MinPageSize = 256

	pagerMagic   = "GMPF"
	pagerVersion = 1
	// superblock layout: magic(4) version(2) reserved(2) pageSize(4)
	// metaLen(4) meta(...)
	superHeader = 16
	// crcSize trails every page including the superblock.
	crcSize = 4
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Pager provides page-granular access to a single file.
type Pager struct {
	mu       sync.Mutex
	f        File
	pageSize int
	numPages uint32
	meta     []byte
	readOnly bool
	retry    RetryStats
}

// RetryStats counts the pager's transient-read recovery work. Retries is
// the number of re-read attempts made, Healed the reads that succeeded
// after at least one retry, Failed the reads that exhausted the retry
// budget (or failed permanently outright) and surfaced an error — the only
// failures the fault-epoch layer above ever sees.
type RetryStats struct {
	Retries uint64
	Healed  uint64
	Failed  uint64
}

// Create creates (truncating) a page file at path. pageSize 0 selects
// DefaultPageSize.
func Create(path string, pageSize int) (*Pager, error) {
	if pageSize == 0 {
		pageSize = DefaultPageSize
	}
	if pageSize < MinPageSize {
		return nil, fmt.Errorf("storage: page size %d below minimum %d", pageSize, MinPageSize)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	p := &Pager{f: osFile{f}, pageSize: pageSize, numPages: 1}
	if err := p.writeSuper(); err != nil {
		f.Close()
		return nil, err
	}
	return p, nil
}

// Open opens an existing page file. If readOnly, writes are rejected.
func Open(path string, readOnly bool) (*Pager, error) {
	return OpenWrapped(path, readOnly, nil)
}

// OpenWrapped opens an existing page file with an optional wrapper
// interposed over its backing File — the seam through which tests and the
// -chaos serve mode slide a FaultInjector under a live store. A nil wrap
// is Open. The superblock is read through the wrapper too, but before the
// retry machinery exists; injectors therefore exempt offset 0.
func OpenWrapped(path string, readOnly bool, wrap func(File) File) (*Pager, error) {
	f, err := openOSFile(path, readOnly)
	if err != nil {
		return nil, err
	}
	if wrap != nil {
		if wrapped := wrap(f); wrapped != nil {
			f = wrapped
		}
	}
	return OpenWith(f, readOnly)
}

// OpenWith opens a page file over an already-open File (taking ownership:
// the pager closes it). If readOnly, writes are rejected.
func OpenWith(f File, readOnly bool) (*Pager, error) {
	hdr := make([]byte, superHeader)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: reading superblock header: %w", err)
	}
	if string(hdr[:4]) != pagerMagic {
		f.Close()
		return nil, fmt.Errorf("storage: bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != pagerVersion {
		f.Close()
		return nil, fmt.Errorf("storage: unsupported version %d", v)
	}
	pageSize := int(binary.LittleEndian.Uint32(hdr[8:12]))
	if pageSize < MinPageSize {
		f.Close()
		return nil, fmt.Errorf("storage: corrupt page size %d", pageSize)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	if size%int64(pageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: file size %d not a multiple of page size %d", size, pageSize)
	}
	p := &Pager{f: f, pageSize: pageSize, numPages: uint32(size / int64(pageSize)), readOnly: readOnly}
	// Verify the superblock checksum and load the meta blob.
	page := make([]byte, pageSize)
	if _, err := f.ReadAt(page, 0); err != nil {
		f.Close()
		return nil, err
	}
	if err := verifyCRC(page); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: superblock: %w", err)
	}
	metaLen := int(binary.LittleEndian.Uint32(page[12:16]))
	if metaLen < 0 || superHeader+metaLen > pageSize-crcSize {
		f.Close()
		return nil, fmt.Errorf("storage: corrupt meta length %d", metaLen)
	}
	p.meta = append([]byte(nil), page[superHeader:superHeader+metaLen]...)
	return p, nil
}

func verifyCRC(page []byte) error {
	n := len(page)
	want := binary.LittleEndian.Uint32(page[n-crcSize:])
	got := crc32.Checksum(page[:n-crcSize], crcTable)
	if want != got {
		return fmt.Errorf("%w: stored %08x computed %08x", errChecksum, want, got)
	}
	return nil
}

func sealCRC(page []byte) {
	n := len(page)
	binary.LittleEndian.PutUint32(page[n-crcSize:], crc32.Checksum(page[:n-crcSize], crcTable))
}

func (p *Pager) writeSuper() error {
	page := make([]byte, p.pageSize)
	copy(page, pagerMagic)
	binary.LittleEndian.PutUint16(page[4:6], pagerVersion)
	binary.LittleEndian.PutUint32(page[8:12], uint32(p.pageSize))
	binary.LittleEndian.PutUint32(page[12:16], uint32(len(p.meta)))
	copy(page[superHeader:], p.meta)
	sealCRC(page)
	_, err := p.f.WriteAt(page, 0)
	return err
}

// PageSize returns the page size in bytes.
func (p *Pager) PageSize() int { return p.pageSize }

// PayloadSize returns the usable bytes per page (page size minus checksum).
func (p *Pager) PayloadSize() int { return p.pageSize - crcSize }

// NumPages returns the number of pages including the superblock.
func (p *Pager) NumPages() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.numPages
}

// Meta returns a copy of the client metadata blob stored in the superblock.
func (p *Pager) Meta() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]byte(nil), p.meta...)
}

// SetMeta stores the client metadata blob in the superblock and flushes it.
// The blob must fit in a single page alongside the header.
func (p *Pager) SetMeta(meta []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.readOnly {
		return fmt.Errorf("storage: SetMeta on read-only file")
	}
	if superHeader+len(meta) > p.pageSize-crcSize {
		return fmt.Errorf("storage: meta blob %d bytes exceeds capacity %d", len(meta), p.pageSize-crcSize-superHeader)
	}
	p.meta = append(p.meta[:0], meta...)
	return p.writeSuper()
}

// Allocate appends a zeroed page and returns its id.
func (p *Pager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.readOnly {
		return 0, fmt.Errorf("storage: Allocate on read-only file")
	}
	id := PageID(p.numPages)
	page := make([]byte, p.pageSize)
	sealCRC(page)
	if _, err := p.f.WriteAt(page, int64(id)*int64(p.pageSize)); err != nil {
		return 0, err
	}
	p.numPages++
	return id, nil
}

// WritePage stores payload (at most PayloadSize bytes) into page id.
func (p *Pager) WritePage(id PageID, payload []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.readOnly {
		return fmt.Errorf("storage: WritePage on read-only file")
	}
	if id == 0 {
		return fmt.Errorf("storage: page 0 is the superblock")
	}
	if id >= PageID(p.numPages) {
		return fmt.Errorf("storage: write to unallocated page %d (have %d)", id, p.numPages)
	}
	if len(payload) > p.pageSize-crcSize {
		return fmt.Errorf("storage: payload %d bytes exceeds page payload %d", len(payload), p.pageSize-crcSize)
	}
	page := make([]byte, p.pageSize)
	copy(page, payload)
	sealCRC(page)
	_, err := p.f.WriteAt(page, int64(id)*int64(p.pageSize))
	return err
}

// readAttempts bounds the transient-read retry loop: the first read plus
// up to readAttempts-1 re-reads before a failure is classified permanent.
const readAttempts = 4

// retryBackoff sleeps before re-read attempt n (1-based): an exponential
// base doubled per attempt plus up to 100% jitter, so concurrent readers
// hammering one flaky region desynchronize. The budget is deliberately
// tiny (≤ ~1ms total) — this covers torn reads and injected chaos, not
// multi-second device resets.
func retryBackoff(attempt int) {
	base := 50 * time.Microsecond << (attempt - 1)
	time.Sleep(base + time.Duration(rand.Int63n(int64(base))))
}

// ReadPage reads page id's payload into a fresh slice of PayloadSize bytes,
// verifying the checksum.
//
// Transient failures — errors marked ErrTransient, short reads, and
// checksum mismatches that heal on re-read (a torn buffer or in-flight
// bit-flip over an intact disk copy) — are retried with jittered backoff
// up to readAttempts times before being classified permanent. Callers
// (the buffer pool, and through it the paged-CSR fault epoch) therefore
// only ever see post-classification permanent failures; a transient blip
// never latches a query-visible fault.
func (p *Pager) ReadPage(id PageID) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id >= PageID(p.numPages) {
		return nil, fmt.Errorf("storage: read of unallocated page %d (have %d)", id, p.numPages)
	}
	page := make([]byte, p.pageSize)
	off := int64(id) * int64(p.pageSize)
	var lastErr error
	for attempt := 0; attempt < readAttempts; attempt++ {
		if attempt > 0 {
			p.retry.Retries++
			retryBackoff(attempt)
		}
		n, err := p.f.ReadAt(page, off)
		if err != nil && err != io.EOF {
			if !IsTransientRead(err) {
				p.retry.Failed++
				return nil, err
			}
			lastErr = fmt.Errorf("storage: page %d: %w", id, err)
			continue
		}
		if n < p.pageSize {
			// EOF short of a full page: the tail bytes are unspecified, so
			// zero them before the CRC check rather than trust leftovers
			// from a previous attempt.
			for i := n; i < p.pageSize; i++ {
				page[i] = 0
			}
		}
		if err := verifyCRC(page); err != nil {
			lastErr = fmt.Errorf("storage: page %d: %w", id, err)
			continue
		}
		if attempt > 0 {
			p.retry.Healed++
		}
		return page[:p.pageSize-crcSize], nil
	}
	p.retry.Failed++
	return nil, lastErr
}

// RetryStats snapshots the pager's transient-read recovery counters.
func (p *Pager) RetryStats() RetryStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.retry
}

// Sync flushes the file to stable storage.
func (p *Pager) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.f.Sync()
}

// Close syncs and closes the file.
func (p *Pager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.readOnly {
		return p.f.Close()
	}
	if err := p.f.Sync(); err != nil {
		p.f.Close()
		return err
	}
	return p.f.Close()
}
