package storage

import (
	"path/filepath"
	"sync"
	"testing"
)

// partitionFile creates a page file with n data pages and returns a pool
// of the given capacity over it plus the data page ids.
func partitionFile(t *testing.T, pages, capacity int) (*BufferPool, []PageID) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "part.gmine")
	p, err := Create(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	ids := make([]PageID, pages)
	for i := range ids {
		id, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if err := p.WritePage(id, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return NewBufferPool(p, capacity), ids
}

// touch pins and immediately releases a page through pp.
func touch(t *testing.T, pp PagePool, id PageID) {
	t.Helper()
	if _, err := pp.Get(id); err != nil {
		t.Fatal(err)
	}
	pp.Release(id)
}

// TestPartitionProtectsWorkingSet is the acceptance criterion: with two
// concurrent "sessions" on a small pool, a whole-file cold sweep through
// partition A must not evict partition B's working set while B holds no
// more frames than its reservation.
func TestPartitionProtectsWorkingSet(t *testing.T) {
	pool, ids := partitionFile(t, 64, 8)
	b := pool.Partition(4)
	defer b.Close()
	// Session B warms its working set: 4 pages, exactly its quota.
	working := ids[:4]
	for _, id := range working {
		touch(t, b, id)
	}
	if st := b.Stats(); st.Held != 4 || st.Misses != 4 {
		t.Fatalf("B after warmup: %+v", st)
	}

	// Session A sweeps every page of the file, several times over, cold.
	a := pool.Partition(3)
	defer a.Close()
	for pass := 0; pass < 3; pass++ {
		for _, id := range ids[4:] {
			touch(t, a, id)
		}
	}
	if st := a.Stats(); st.Evictions == 0 {
		t.Fatalf("A's sweep (60 pages through an 8-frame pool) evicted nothing: %+v", st)
	}

	// B's reserved frames survived: re-reading the working set is all hits.
	before := b.Stats()
	for _, id := range working {
		touch(t, b, id)
	}
	after := b.Stats()
	if after.Misses != before.Misses {
		t.Fatalf("A's sweep evicted B's reserved working set: %d new misses", after.Misses-before.Misses)
	}
	if after.Hits != before.Hits+4 {
		t.Fatalf("B's re-read: hits %d -> %d, want +4", before.Hits, after.Hits)
	}
	if after.Held < 4 {
		t.Fatalf("B holds %d frames, reserved 4", after.Held)
	}
}

// TestPartitionSpillIsEvictable: frames a partition holds beyond its
// quota live in the shared economy — other requesters may evict them, and
// the partition's protected core stays intact.
func TestPartitionSpillIsEvictable(t *testing.T) {
	pool, ids := partitionFile(t, 16, 6)
	a := pool.Partition(2)
	defer a.Close()
	// A loads 5 pages: 2 within quota, 3 spilled.
	for _, id := range ids[:5] {
		touch(t, a, id)
	}
	if st := a.Stats(); st.Held != 5 {
		t.Fatalf("A holds %d, want 5", st.Held)
	}
	// A shared reader churns through the rest of the file; it must succeed
	// (spill + shared frames are evictable) without ever touching A's
	// 2-frame protected core.
	for _, id := range ids[5:] {
		touch(t, pool, id)
	}
	st := a.Stats()
	if st.Held < 2 {
		t.Fatalf("shared churn ate into A's reservation: held %d", st.Held)
	}
	if st.Held > 2 {
		t.Fatalf("A still holds %d spilled frames after full churn through a 6-frame pool", st.Held)
	}
}

// TestPartitionClamp: reservations are clamped so at least one frame
// always remains shared, and further partitions degrade to quota 0
// instead of failing.
func TestPartitionClamp(t *testing.T) {
	pool, _ := partitionFile(t, 4, 4)
	a := pool.Partition(100)
	if got := a.Stats().Quota; got != 3 {
		t.Fatalf("first partition quota %d, want cap-1=3", got)
	}
	b := pool.Partition(2)
	if got := b.Stats().Quota; got != 0 {
		t.Fatalf("second partition quota %d, want 0 (pool fully reserved)", got)
	}
	if pool.Reserved() != 3 {
		t.Fatalf("reserved %d, want 3", pool.Reserved())
	}
	a.Close()
	if pool.Reserved() != 0 {
		t.Fatalf("reserved %d after close, want 0", pool.Reserved())
	}
	c := pool.Partition(-5)
	if got := c.Stats().Quota; got != 0 {
		t.Fatalf("negative request quota %d, want 0", got)
	}
	b.Close()
	c.Close()
}

// TestPartitionCloseDemotes: Close returns the reservation, demotes owned
// frames to shared (still resident), and is idempotent; Gets after Close
// fall back to the shared remainder without corrupting accounting.
func TestPartitionCloseDemotes(t *testing.T) {
	pool, ids := partitionFile(t, 8, 4)
	a := pool.Partition(3)
	for _, id := range ids[:3] {
		touch(t, a, id)
	}
	a.Close()
	a.Close() // idempotent
	if pool.Reserved() != 0 {
		t.Fatalf("reserved %d after close", pool.Reserved())
	}
	if len(pool.Partitions()) != 0 {
		t.Fatal("closed partition still listed")
	}
	// The frames stayed resident as shared...
	st0 := pool.Stats()
	touch(t, pool, ids[0])
	if st := pool.Stats(); st.Hits != st0.Hits+1 {
		t.Fatal("demoted frame was dropped instead of shared")
	}
	// ...and are evictable by anyone now.
	for _, id := range ids[3:] {
		touch(t, pool, id)
	}
	if st := pool.Stats(); st.Evictions == 0 {
		t.Fatal("no evictions although demoted frames filled the pool")
	}
	// A straggler Get through the closed partition works and owns nothing.
	touch(t, a, ids[7])
	if st := a.Stats(); st.Held != 0 || st.Quota != 0 {
		t.Fatalf("closed partition re-acquired frames: %+v", st)
	}
}

// TestPartitionConcurrentSweeps: many partitioned sweeps over one small
// pool must stay deadlock-free and serve correct data (run with -race).
func TestPartitionConcurrentSweeps(t *testing.T) {
	pool, ids := partitionFile(t, 32, 4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := pool.Partition(2)
			defer p.Close()
			for pass := 0; pass < 5; pass++ {
				for i, id := range ids {
					data, err := p.Get(id)
					if err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
					if data[0] != byte(i) {
						t.Errorf("worker %d: page %d holds %d", w, i, data[0])
						p.Release(id)
						return
					}
					p.Release(id)
				}
			}
		}(w)
	}
	wg.Wait()
	if res := pool.Resident(); res > pool.Capacity() {
		t.Fatalf("resident %d exceeds capacity %d", res, pool.Capacity())
	}
	if pool.Reserved() != 0 {
		t.Fatalf("reserved %d after all partitions closed", pool.Reserved())
	}
}
