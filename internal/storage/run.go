package storage

import "fmt"

// Fixed-stride page runs: large arrays of same-sized elements stored in
// consecutive pages, with floor(PayloadSize/stride) whole elements per page
// (no element ever straddles a page boundary). Unlike the blob layer there
// is no length header, so the address of element i is pure arithmetic:
//
//	page   = first + i/perPage
//	offset = (i%perPage) * stride
//
// which is what lets a paged CSR read one node's neighbor range without
// touching the rest of the array — the substrate of the out-of-core query
// engine. Because the pager is append-only, runs written by WriteRun are
// always contiguous and addressed by their first PageID alone.

// RunPerPage returns how many stride-sized elements fit in one page.
func RunPerPage(stride, payloadSize int) int {
	if stride <= 0 {
		return 0
	}
	return payloadSize / stride
}

// RunPages returns how many pages a run of count elements occupies.
func RunPages(count, stride, payloadSize int) int {
	per := RunPerPage(stride, payloadSize)
	if per <= 0 || count <= 0 {
		return 0
	}
	return (count + per - 1) / per
}

// WriteRun appends data (len(data) must be a multiple of stride) as a new
// fixed-stride page run and returns its first page id. A run of zero
// elements occupies no pages and returns 0.
func WriteRun(p *Pager, data []byte, stride int) (PageID, error) {
	if stride <= 0 || stride > p.PayloadSize() {
		return 0, fmt.Errorf("storage: run stride %d out of range (payload %d)", stride, p.PayloadSize())
	}
	if len(data)%stride != 0 {
		return 0, fmt.Errorf("storage: run data %d bytes not a multiple of stride %d", len(data), stride)
	}
	perBytes := RunPerPage(stride, p.PayloadSize()) * stride
	var first PageID
	for off := 0; off < len(data); off += perBytes {
		end := off + perBytes
		if end > len(data) {
			end = len(data)
		}
		id, err := p.Allocate()
		if err != nil {
			return 0, err
		}
		if off == 0 {
			first = id
		}
		if err := p.WritePage(id, data[off:end]); err != nil {
			return 0, err
		}
	}
	return first, nil
}

// RangeError reports an element range that does not lie inside a run —
// the caller asked for elements the run does not have. It is a typed
// error (match with errors.As) so callers can distinguish a bad request
// from an I/O fault: a RangeError means the lo/hi arithmetic upstream is
// wrong or the geometry it was derived from is corrupt, never that the
// disk misbehaved.
type RangeError struct {
	Lo, Hi int // requested element range [Lo,Hi)
	Count  int // elements in the run
}

func (e *RangeError) Error() string {
	return fmt.Sprintf("storage: run range [%d,%d) out of bounds (count %d)", e.Lo, e.Hi, e.Count)
}

// RunReader reads element ranges of a fixed-stride page run through a
// buffer pool. Pages are pinned only while their elements are copied out,
// so a reader's resident footprint is always bounded by the pool. Safe for
// concurrent use (the pool serializes page access).
type RunReader struct {
	pool    PagePool
	first   PageID
	stride  int
	perPage int
	count   int
}

// NewRunReader wraps the run of count stride-sized elements starting at
// first. It validates that the run lies inside the file, so a corrupt
// superblock cannot direct reads past the end.
func NewRunReader(pool *BufferPool, first PageID, stride, count int) (*RunReader, error) {
	payload := pool.pager.PayloadSize()
	if stride <= 0 || stride > payload {
		return nil, fmt.Errorf("storage: run stride %d out of range (payload %d)", stride, payload)
	}
	if count < 0 {
		return nil, fmt.Errorf("storage: negative run length %d", count)
	}
	pages := RunPages(count, stride, payload)
	if count > 0 && (first == 0 || int64(first)+int64(pages) > int64(pool.pager.NumPages())) {
		return nil, fmt.Errorf("storage: run of %d pages at %d exceeds file (%d pages)",
			pages, first, pool.pager.NumPages())
	}
	return &RunReader{pool: pool, first: first, stride: stride, perPage: RunPerPage(stride, payload), count: count}, nil
}

// Count returns the number of elements in the run.
func (r *RunReader) Count() int { return r.count }

// First returns the run's first page id (meaningless when Count is 0:
// empty runs occupy no pages).
func (r *RunReader) First() PageID { return r.first }

// PerPage returns how many elements each page of the run holds.
func (r *RunReader) PerPage() int { return r.perPage }

// Pages returns the number of pages the run occupies.
func (r *RunReader) Pages() int {
	if r.count <= 0 || r.perPage <= 0 {
		return 0
	}
	return (r.count + r.perPage - 1) / r.perPage
}

// ElementRange maps the page range [first,last] (inclusive, in file page
// ids) to the run elements stored on those pages, clamped to the run;
// ok=false when the pages and the run do not intersect. This is the
// inverse of the run's page arithmetic, used by the tiering promoter to
// turn hot pages back into element ranges.
func (r *RunReader) ElementRange(first, last PageID) (lo, hi int, ok bool) {
	if r.count <= 0 || r.perPage <= 0 || last < r.first {
		return 0, 0, false
	}
	end := r.first + PageID(r.Pages()) // one past the run's last page
	if first >= end {
		return 0, 0, false
	}
	if first < r.first {
		first = r.first
	}
	if last >= end {
		last = end - 1
	}
	lo = int(first-r.first) * r.perPage
	hi = int(last-r.first+1) * r.perPage
	if hi > r.count {
		hi = r.count
	}
	return lo, hi, lo < hi
}

// WithPool returns a reader over the same run whose page pins go through
// p instead of the pool the reader was built with — the hook that lets a
// query read the shared on-disk structure through its own buffer-pool
// Partition, so its paging is accounted (and bounded) separately. The
// receiver is unchanged and both readers stay safe for concurrent use.
func (r *RunReader) WithPool(p PagePool) *RunReader {
	nr := *r
	nr.pool = p
	return &nr
}

// Read copies elements [lo,hi) into dst, which must hold (hi-lo)*stride
// bytes. Each underlying page is pinned once for the copy and released
// before the next page is touched. A range outside the run fails with a
// *RangeError before any page is touched: lo/hi come from callers doing
// offset arithmetic over persisted (possibly corrupt) geometry, and the
// explicit gate means a negative lo, an inverted range or an hi past the
// run can never reach the page math below, where lo<0 would index pages
// before the run and hi>count would read whatever follows it in the file.
//
//gmine:hotpath
func (r *RunReader) Read(lo, hi int, dst []byte) error {
	if lo < 0 || hi < lo || hi > r.count {
		return &RangeError{Lo: lo, Hi: hi, Count: r.count}
	}
	if len(dst) < (hi-lo)*r.stride {
		return fmt.Errorf("storage: run dst %d bytes, need %d", len(dst), (hi-lo)*r.stride)
	}
	out := 0
	for i := lo; i < hi; {
		pg := r.first + PageID(i/r.perPage)
		data, err := r.pool.Get(pg)
		if err != nil {
			return err
		}
		j := i - i%r.perPage + r.perPage // first element of the next page
		if j > hi {
			j = hi
		}
		off := (i % r.perPage) * r.stride
		out += copy(dst[out:], data[off:off+(j-i)*r.stride])
		r.pool.Release(pg)
		i = j
	}
	return nil
}
