package storage

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

// TestRunRoundTrip writes runs of several strides and counts and reads
// every possible range back through a tiny pool.
func TestRunRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.gmine")
	p, err := Create(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	type run struct {
		stride, count int
		first         PageID
		data          []byte
	}
	runs := []run{{4, 0, 0, nil}, {4, 1, 0, nil}, {4, 63, 0, nil}, {8, 200, 0, nil}, {3, 100, 0, nil}}
	for i := range runs {
		r := &runs[i]
		r.data = make([]byte, r.stride*r.count)
		for j := range r.data {
			r.data[j] = byte(i*31 + j)
		}
		if r.first, err = WriteRun(p, r.data, r.stride); err != nil {
			t.Fatal(err)
		}
	}
	pool := NewBufferPool(p, 2)
	for i := range runs {
		r := &runs[i]
		rd, err := NewRunReader(pool, r.first, r.stride, r.count)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		for lo := 0; lo <= r.count; lo += 1 + r.count/7 {
			for hi := lo; hi <= r.count; hi += 1 + r.count/5 {
				dst := make([]byte, (hi-lo)*r.stride)
				if err := rd.Read(lo, hi, dst); err != nil {
					t.Fatalf("run %d [%d,%d): %v", i, lo, hi, err)
				}
				if !bytes.Equal(dst, r.data[lo*r.stride:hi*r.stride]) {
					t.Fatalf("run %d [%d,%d): data mismatch", i, lo, hi)
				}
			}
		}
	}
	if st := pool.Stats(); st.Evictions == 0 {
		t.Fatal("expected evictions from a 2-frame pool over multi-page runs")
	}
}

// TestRunReaderBounds checks constructor and range validation.
func TestRunReaderBounds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rb.gmine")
	p, err := Create(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	data := make([]byte, 4*100)
	first, err := WriteRun(p, data, 4)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewBufferPool(p, 4)
	// Claiming more elements than the file holds must fail at construction.
	if _, err := NewRunReader(pool, first, 4, 1<<20); err == nil {
		t.Fatal("oversized run accepted")
	}
	if _, err := NewRunReader(pool, first, 0, 100); err == nil {
		t.Fatal("zero stride accepted")
	}
	rd, err := NewRunReader(pool, first, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := rd.Read(90, 101, make([]byte, 11*4)); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if err := rd.Read(0, 10, make([]byte, 4)); err == nil {
		t.Fatal("short dst accepted")
	}
}

// TestRunReadRangeErrorTyped pins the bounds gate of RunReader.Read: each
// malformed range — negative lo, inverted lo>hi, hi past the run — fails
// with a *RangeError carrying the offending values, before any page math
// could turn it into a wild read, and without touching the pool at all.
func TestRunReadRangeErrorTyped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "re.gmine")
	p, err := Create(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	first, err := WriteRun(p, make([]byte, 4*50), 4)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewBufferPool(p, 4)
	rd, err := NewRunReader(pool, first, 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 4*200)
	cases := []struct {
		name   string
		lo, hi int
	}{
		{"negative lo", -1, 10},
		{"lo greater than hi", 20, 10},
		{"hi past count", 0, 51},
		{"both past count", 60, 70},
		{"negative range", -5, -2},
	}
	for _, tc := range cases {
		err := rd.Read(tc.lo, tc.hi, dst)
		if err == nil {
			t.Fatalf("%s: Read(%d,%d) accepted", tc.name, tc.lo, tc.hi)
		}
		var re *RangeError
		if !errors.As(err, &re) {
			t.Fatalf("%s: error %T %q is not a *RangeError", tc.name, err, err)
		}
		if re.Lo != tc.lo || re.Hi != tc.hi || re.Count != 50 {
			t.Fatalf("%s: RangeError{%d,%d,%d}, want {%d,%d,50}", tc.name, re.Lo, re.Hi, re.Count, tc.lo, tc.hi)
		}
	}
	if st := pool.Stats(); st.Hits+st.Misses != 0 {
		t.Fatalf("rejected ranges touched the pool: %+v", st)
	}
	// A valid range on the same reader still works (the gate is not
	// latched state).
	if err := rd.Read(0, 50, dst[:50*4]); err != nil {
		t.Fatalf("valid read after rejections: %v", err)
	}
}
