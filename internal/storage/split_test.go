package storage

import "testing"

// TestPartitionSplitQuotaAccounting: Split moves quota/k frames into each
// child (the parent keeps the remainder) WITHOUT touching the pool-level
// reservation, and closing a child hands its quota back to the parent
// while folding counters into the parent's totals plus a per-shard
// snapshot — so one query's trace stays whole across a sharded solve.
func TestPartitionSplitQuotaAccounting(t *testing.T) {
	pool, ids := partitionFile(t, 16, 12)
	parent := pool.Partition(9)
	defer parent.Close()
	if got := parent.Stats().Quota; got != 9 {
		t.Fatalf("parent quota %d, want 9", got)
	}
	reserved := pool.Reserved()

	children := parent.Split(4) // 9/4 = 2 each, parent keeps 1
	for i, c := range children {
		if got := c.Stats().Quota; got != 2 {
			t.Fatalf("child %d quota %d, want 2", i, got)
		}
	}
	if got := parent.Stats().Quota; got != 1 {
		t.Fatalf("parent remainder %d, want 1", got)
	}
	if pool.Reserved() != reserved {
		t.Fatalf("Split changed pool reservation: %d -> %d", reserved, pool.Reserved())
	}

	// Each shard pins a couple of pages through its own reservation.
	for i, c := range children {
		touch(t, c, ids[2*i])
		touch(t, c, ids[2*i+1])
	}
	for i, c := range children {
		if st := c.Stats(); st.Misses != 2 {
			t.Fatalf("child %d: %+v, want 2 misses", i, st)
		}
		c.Close()
	}

	// Quota is back with the parent (not the pool), stats are folded.
	if got := parent.Stats().Quota; got != 9 {
		t.Fatalf("parent quota after children closed: %d, want 9", got)
	}
	if pool.Reserved() != reserved {
		t.Fatalf("child Close changed pool reservation: %d -> %d", reserved, pool.Reserved())
	}
	st := parent.Stats()
	if st.Hits+st.Misses != 8 {
		t.Fatalf("parent folded pins %d, want 8: %+v", st.Hits+st.Misses, st)
	}
	ss := parent.ShardStats()
	if len(ss) != 4 {
		t.Fatalf("ShardStats has %d entries, want 4", len(ss))
	}
	for i, s := range ss {
		if s.Quota != 2 || s.Hits+s.Misses != 2 {
			t.Fatalf("shard snapshot %d: %+v", i, s)
		}
	}
}

// TestPartitionSplitResplit: because child quota returns to the PARENT, a
// second sharded solve on the same query partition re-splits the full
// quota — the AnalyzeGraph shape (report, then PageRank, one partition).
func TestPartitionSplitResplit(t *testing.T) {
	pool, _ := partitionFile(t, 8, 8)
	parent := pool.Partition(6)
	defer parent.Close()
	for round := 0; round < 3; round++ {
		children := parent.Split(3)
		for i, c := range children {
			if got := c.Stats().Quota; got != 2 {
				t.Fatalf("round %d child %d quota %d, want 2", round, i, got)
			}
			c.Close()
		}
		if got := parent.Stats().Quota; got != 6 {
			t.Fatalf("round %d: parent quota %d after shards closed, want 6", round, got)
		}
	}
	if got := len(parent.ShardStats()); got != 9 {
		t.Fatalf("ShardStats accumulated %d snapshots, want 9", got)
	}
}

// TestPartitionSplitClosedParent: splitting a closed (or quota-0) parent
// yields usable quota-0 children — stats-only views that still serve
// pages through the shared economy and close without corrupting the
// reservation accounting.
func TestPartitionSplitClosedParent(t *testing.T) {
	pool, ids := partitionFile(t, 8, 6)
	parent := pool.Partition(4)
	parent.Close()
	children := parent.Split(2)
	for i, c := range children {
		if got := c.Stats().Quota; got != 0 {
			t.Fatalf("child %d of closed parent has quota %d", i, got)
		}
		touch(t, c, ids[i])
		c.Close()
	}
	if pool.Reserved() != 0 {
		t.Fatalf("reserved %d after everything closed", pool.Reserved())
	}

	// k < 1 degrades to a single child rather than failing.
	p2 := pool.Partition(2)
	defer p2.Close()
	one := p2.Split(0)
	if len(one) != 1 {
		t.Fatalf("Split(0) yielded %d children", len(one))
	}
	one[0].Close()
}

// TestPartitionSplitChildOutlivesParent: a child closed AFTER its parent
// returns its quota to the pool directly (the parent is gone), so the
// reservation never leaks even when the close order is wrong.
func TestPartitionSplitChildOutlivesParent(t *testing.T) {
	pool, _ := partitionFile(t, 8, 8)
	parent := pool.Partition(6)
	children := parent.Split(2) // 3 each, parent keeps 0
	parent.Close()              // returns only its remainder (0)
	if got := pool.Reserved(); got != 6 {
		t.Fatalf("reserved %d after parent close, want 6 (children still hold it)", got)
	}
	for _, c := range children {
		c.Close()
	}
	if got := pool.Reserved(); got != 0 {
		t.Fatalf("reserved %d after children closed, want 0", got)
	}
}

// TestPartitionSplitProtectsSiblings: a shard churning cold pages through
// its own slice of the quota cannot evict a sibling shard's working set
// while that sibling stays within its reservation — Partition's query-
// level protection, one level down.
func TestPartitionSplitProtectsSiblings(t *testing.T) {
	pool, ids := partitionFile(t, 64, 10)
	parent := pool.Partition(8)
	defer parent.Close()
	children := parent.Split(2) // 4 frames each
	a, b := children[0], children[1]
	defer a.Close()
	defer b.Close()

	// B warms its working set: exactly its quota.
	working := ids[:4]
	for _, id := range working {
		touch(t, b, id)
	}
	// A sweeps the rest of the file cold, several passes.
	for pass := 0; pass < 3; pass++ {
		for _, id := range ids[4:] {
			touch(t, a, id)
		}
	}
	if st := a.Stats(); st.Evictions == 0 {
		t.Fatalf("A's sweep evicted nothing; pool not under pressure: %+v", st)
	}
	before := b.Stats()
	for _, id := range working {
		touch(t, b, id)
	}
	if after := b.Stats(); after.Misses != before.Misses {
		t.Fatalf("sibling shard evicted B's reserved working set: %d new misses", after.Misses-before.Misses)
	}
}
