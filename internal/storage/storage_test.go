package storage

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"
)

func tmpFile(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.gmine")
}

func TestCreateOpenRoundTrip(t *testing.T) {
	path := tmpFile(t)
	p, err := Create(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	if p.PageSize() != 512 {
		t.Fatalf("page size %d want 512", p.PageSize())
	}
	if err := p.SetMeta([]byte("hello gmine")); err != nil {
		t.Fatal(err)
	}
	id, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WritePage(id, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if string(p2.Meta()) != "hello gmine" {
		t.Fatalf("meta %q", p2.Meta())
	}
	got, err := p2.ReadPage(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:7]) != "payload" {
		t.Fatalf("payload %q", got[:7])
	}
	if p2.NumPages() != 2 {
		t.Fatalf("numPages=%d want 2", p2.NumPages())
	}
}

func TestDefaultPageSize(t *testing.T) {
	p, err := Create(tmpFile(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.PageSize() != DefaultPageSize {
		t.Fatalf("page size %d want %d", p.PageSize(), DefaultPageSize)
	}
	if p.PayloadSize() != DefaultPageSize-4 {
		t.Fatalf("payload size %d", p.PayloadSize())
	}
}

func TestCreateRejectsTinyPages(t *testing.T) {
	if _, err := Create(tmpFile(t), 64); err == nil {
		t.Fatal("accepted page size below minimum")
	}
}

func TestOpenRejectsBadMagic(t *testing.T) {
	path := tmpFile(t)
	if err := os.WriteFile(path, bytes.Repeat([]byte("x"), 512), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, true); err == nil {
		t.Fatal("accepted non-pager file")
	}
}

func TestReadOnlyRejectsWrites(t *testing.T) {
	path := tmpFile(t)
	p, err := Create(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	ro, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if _, err := ro.Allocate(); err == nil {
		t.Fatal("Allocate succeeded on read-only pager")
	}
	if err := ro.SetMeta([]byte("x")); err == nil {
		t.Fatal("SetMeta succeeded on read-only pager")
	}
}

func TestWritePageBounds(t *testing.T) {
	p, err := Create(tmpFile(t), 512)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.WritePage(0, []byte("x")); err == nil {
		t.Fatal("allowed write to superblock")
	}
	if err := p.WritePage(5, []byte("x")); err == nil {
		t.Fatal("allowed write to unallocated page")
	}
	id, _ := p.Allocate()
	if err := p.WritePage(id, make([]byte, 512)); err == nil {
		t.Fatal("allowed oversized payload")
	}
	if _, err := p.ReadPage(99); err == nil {
		t.Fatal("allowed read of unallocated page")
	}
}

func TestCorruptionDetected(t *testing.T) {
	path := tmpFile(t)
	p, err := Create(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := p.Allocate()
	if err := p.WritePage(id, []byte("important data")); err != nil {
		t.Fatal(err)
	}
	p.Close()
	// Flip a byte in the page body.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[512+3] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	p2, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if _, err := p2.ReadPage(id); err == nil {
		t.Fatal("corrupted page read succeeded")
	}
}

func TestSuperblockCorruptionDetectedAtOpen(t *testing.T) {
	path := tmpFile(t)
	p, err := Create(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	p.SetMeta([]byte("meta"))
	p.Close()
	raw, _ := os.ReadFile(path)
	raw[20] ^= 0xFF // inside the meta area of the superblock
	os.WriteFile(path, raw, 0o644)
	if _, err := Open(path, true); err == nil {
		t.Fatal("opened file with corrupt superblock")
	}
}

func TestMetaTooLarge(t *testing.T) {
	p, err := Create(tmpFile(t), 256)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.SetMeta(make([]byte, 256)); err == nil {
		t.Fatal("accepted oversized meta")
	}
}

func TestBufferPoolHitMissEvict(t *testing.T) {
	p, err := Create(tmpFile(t), 512)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, _ := p.Allocate()
		p.WritePage(id, []byte{byte(i)})
		ids = append(ids, id)
	}
	bp := NewBufferPool(p, 2)
	// Miss, miss.
	for _, id := range ids[:2] {
		d, err := bp.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		bp.Release(id)
		_ = d
	}
	// Hit.
	if _, err := bp.Get(ids[1]); err != nil {
		t.Fatal(err)
	}
	bp.Release(ids[1])
	st := bp.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats %+v want hits=1 misses=2", st)
	}
	// Force eviction of ids[0] (least recently used).
	if _, err := bp.Get(ids[2]); err != nil {
		t.Fatal(err)
	}
	bp.Release(ids[2])
	st = bp.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions=%d want 1", st.Evictions)
	}
	// ids[0] should now miss again.
	if _, err := bp.Get(ids[0]); err != nil {
		t.Fatal(err)
	}
	bp.Release(ids[0])
	if got := bp.Stats().Misses; got != 4 {
		t.Fatalf("misses=%d want 4", got)
	}
}

func TestBufferPoolPinnedPagesNotEvicted(t *testing.T) {
	p, err := Create(tmpFile(t), 512)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	a, _ := p.Allocate()
	b, _ := p.Allocate()
	bp := NewBufferPool(p, 1)
	if _, err := bp.Get(a); err != nil {
		t.Fatal(err)
	}
	// Pool is full with a pinned page: a concurrent Get must wait for the
	// release — never evict the pinned page, never fail spuriously.
	got := make(chan error, 1)
	go func() {
		_, err := bp.Get(b)
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("Get on an all-pinned pool returned early (err=%v) instead of waiting", err)
	case <-time.After(50 * time.Millisecond):
	}
	if bp.Resident() != 1 {
		t.Fatalf("pinned page evicted: %d resident", bp.Resident())
	}
	bp.Release(a)
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("after release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiting Get never woke after Release")
	}
	bp.Release(b)
}

func TestBufferPoolDoubleReleaseHarmless(t *testing.T) {
	p, err := Create(tmpFile(t), 512)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	a, _ := p.Allocate()
	bp := NewBufferPool(p, 2)
	if _, err := bp.Get(a); err != nil {
		t.Fatal(err)
	}
	bp.Release(a)
	bp.Release(a) // extra release must not underflow pins
	if _, err := bp.Get(a); err != nil {
		t.Fatal(err)
	}
	bp.Release(a)
}

func TestBlobRoundTripSmall(t *testing.T) {
	p, err := Create(tmpFile(t), 256)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	data := []byte("a small blob")
	id, err := WriteBlob(p, data)
	if err != nil {
		t.Fatal(err)
	}
	bp := NewBufferPool(p, 4)
	got, err := ReadBlob(bp, id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q want %q", got, data)
	}
}

func TestBlobRoundTripMultiPage(t *testing.T) {
	p, err := Create(tmpFile(t), 256)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 2000)
	rng.Read(data)
	id, err := WriteBlob(p, data)
	if err != nil {
		t.Fatal(err)
	}
	want := BlobPages(len(data), p.PayloadSize())
	if got := int(p.NumPages()) - 1; got != want {
		t.Fatalf("blob used %d pages, BlobPages says %d", got, want)
	}
	got, err := ReadBlobDirect(p, id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("multi-page blob mismatch (direct)")
	}
	bp := NewBufferPool(p, 3)
	got2, err := ReadBlob(bp, id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, data) {
		t.Fatal("multi-page blob mismatch (pooled)")
	}
}

func TestBlobEmpty(t *testing.T) {
	p, err := Create(tmpFile(t), 256)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	id, err := WriteBlob(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadBlobDirect(p, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty blob read back %d bytes", len(got))
	}
}

func TestBlobPagesMath(t *testing.T) {
	// payload 252 (pageSize 256): first page holds 248, rest 252 each.
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {248, 1}, {249, 2}, {500, 2}, {501, 3},
	}
	for _, c := range cases {
		if got := BlobPages(c.n, 252); got != c.want {
			t.Fatalf("BlobPages(%d,252)=%d want %d", c.n, got, c.want)
		}
	}
}

func TestPropertyBlobRoundTrip(t *testing.T) {
	path := tmpFile(t)
	p, err := Create(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	bp := NewBufferPool(p, 8)
	f := func(data []byte) bool {
		id, err := WriteBlob(p, data)
		if err != nil {
			return false
		}
		got, err := ReadBlob(bp, id)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBlobsSurviveReopen(t *testing.T) {
	path := tmpFile(t)
	p, err := Create(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	blobs := map[PageID][]byte{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		data := make([]byte, rng.Intn(3000))
		rng.Read(data)
		id, err := WriteBlob(p, data)
		if err != nil {
			t.Fatal(err)
		}
		blobs[id] = data
	}
	p.Close()
	p2, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	bp := NewBufferPool(p2, 16)
	for id, want := range blobs {
		got, err := ReadBlob(bp, id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("blob %d mismatch after reopen", id)
		}
	}
}

func TestConcurrentBufferPoolReads(t *testing.T) {
	p, err := Create(tmpFile(t), 512)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var ids []PageID
	for i := 0; i < 20; i++ {
		id, _ := p.Allocate()
		p.WritePage(id, []byte{byte(i)})
		ids = append(ids, id)
	}
	bp := NewBufferPool(p, 8)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				id := ids[rng.Intn(len(ids))]
				d, err := bp.Get(id)
				if err != nil {
					done <- err
					return
				}
				if d[0] != byte(id-1) {
					done <- os.ErrInvalid
					return
				}
				bp.Release(id)
			}
			done <- nil
		}(int64(w))
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
